// Package probenet implements the framed wire protocol between the
// Memhist front end and the headless measurement probe of the paper's
// Fig. 6 architecture. The original sketch exchanged one bare JSON blob
// per connection; probenet replaces it with a versioned, length-prefixed
// and checksummed framing so that a flaky link, a slow peer or a
// garbage-emitting endpoint produces a typed, recoverable error instead
// of a hang, an OOM or a silently corrupt histogram.
//
// Wire layout of every frame (big-endian):
//
//	offset 0: magic   "NP" (2 bytes)
//	offset 2: version (1 byte, must equal Version)
//	offset 3: type    (1 byte, FrameType)
//	offset 4: length  (4 bytes, payload size, ≤ MaxFrame)
//	offset 8: crc32   (4 bytes, IEEE checksum of the payload)
//	offset 12: payload (JSON)
//
// A connection starts with the server sending a HELLO frame carrying
// the protocol version and the probe's capabilities (workload and
// machine names). The client then issues any number of REQUEST and PING
// frames; each is answered by a RESPONSE/PONG echoing the request ID,
// or by an ERROR frame with a machine-readable code.
package probenet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the protocol version spoken by this package. Peers with a
// different version refuse each other during the HELLO handshake (and
// at the frame level, since every header carries the version).
const Version = 1

// MaxFrame bounds the payload size of a single frame so that a garbage
// or malicious peer cannot make the other side allocate unbounded
// memory. Histograms are a few KiB; 1 MiB leaves ample headroom.
const MaxFrame = 1 << 20

const headerSize = 12

// FrameType discriminates the frames of the probe protocol.
type FrameType uint8

const (
	// FrameHello is sent by the server on accept: version + capabilities.
	FrameHello FrameType = iota + 1
	// FrameRequest carries a measurement request from the client.
	FrameRequest
	// FrameResponse carries the measured histogram back.
	FrameResponse
	// FrameError carries a machine-readable error instead of a response.
	FrameError
	// FramePing is a client health check.
	FramePing
	// FramePong answers a PING with the probe's stats.
	FramePong
	// FrameHeartbeat is a fleet probe's periodic liveness beacon to its
	// coordinator. Peers that predate the fleet control plane never see
	// it: probes only send heartbeats after registering with a
	// coordinator, and coordinators require a probe identity first.
	FrameHeartbeat

	frameTypeMax = FrameHeartbeat
)

// String names the frame type for logs and errors.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameRequest:
		return "REQUEST"
	case FrameResponse:
		return "RESPONSE"
	case FrameError:
		return "ERROR"
	case FramePing:
		return "PING"
	case FramePong:
		return "PONG"
	case FrameHeartbeat:
		return "HEARTBEAT"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// Hello is the server's handshake: protocol version plus the probe's
// capabilities, letting the client fail fast on requests the probe can
// never serve. In the fleet direction the roles reverse — a probe
// dialling its coordinator speaks first with a Hello carrying its
// identity — so the identity fields are optional and omitted from the
// wire when empty, keeping the classic front-end handshake
// byte-identical to pre-fleet probes.
type Hello struct {
	Version   int      `json:"version"`
	Workloads []string `json:"workloads,omitempty"`
	Machines  []string `json:"machines,omitempty"`
	MaxFrame  int      `json:"max_frame,omitempty"`
	// ProbeID names the probe for fleet registration and health
	// tracking; empty outside the fleet control plane.
	ProbeID string `json:"probe_id,omitempty"`
	// Instance distinguishes restarts of the same probe: a coordinator
	// seeing a new instance for a known ProbeID knows the probe
	// restarted (a flap) rather than resumed.
	Instance uint64 `json:"instance,omitempty"`
}

// Heartbeat is a fleet probe's periodic liveness beacon. Seq increases
// monotonically per connection so a coordinator can detect reordered or
// replayed beacons; InFlight reports how many cells the probe is
// currently serving.
type Heartbeat struct {
	ProbeID  string          `json:"probe_id"`
	Instance uint64          `json:"instance,omitempty"`
	Seq      uint64          `json:"seq"`
	InFlight int             `json:"in_flight,omitempty"`
	Stats    json.RawMessage `json:"stats,omitempty"`
}

// Request envelopes one measurement request. The Body is opaque to
// probenet (the memhist request JSON); TimeoutMillis propagates the
// client's per-request deadline to the server.
type Request struct {
	ID            uint64          `json:"id"`
	TimeoutMillis int64           `json:"timeout_ms,omitempty"`
	Body          json.RawMessage `json:"body"`
}

// Response envelopes a successful answer, echoing the request ID.
type Response struct {
	ID   uint64          `json:"id"`
	Body json.RawMessage `json:"body"`
}

// ErrorMsg is the payload of an ERROR frame. ID echoes the request that
// failed; ID 0 means the error concerns the connection as a whole
// (overloaded, shutting-down, protocol violations).
//
// RetryAfterMillis is the backpressure hint attached to CodeOverloaded
// and CodeShuttingDown errors: how long the peer suggests waiting
// before trying again. Zero means no hint and is omitted from the
// wire, so ERROR frames from peers that predate overload protection —
// and frames for codes that never carry a hint — stay byte-identical.
type ErrorMsg struct {
	ID               uint64    `json:"id"`
	Code             ErrorCode `json:"code"`
	Message          string    `json:"message,omitempty"`
	RetryAfterMillis int64     `json:"retry_after_ms,omitempty"`
}

// Ping is a client health check.
type Ping struct {
	ID uint64 `json:"id"`
}

// Pong answers a Ping; Stats carries the probe's counters as JSON.
type Pong struct {
	ID    uint64          `json:"id"`
	Stats json.RawMessage `json:"stats,omitempty"`
}

// WriteFrame marshals v and writes one complete frame. The header and
// payload go out in a single Write so a well-behaved transport emits
// them back-to-back.
func WriteFrame(w io.Writer, t FrameType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("probenet: encoding %s payload: %w", t, err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("probenet: %s payload %d bytes exceeds MaxFrame %d", t, len(payload), MaxFrame)
	}
	buf := make([]byte, headerSize+len(payload))
	buf[0], buf[1] = 'N', 'P'
	buf[2] = Version
	buf[3] = byte(t)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("probenet: writing %s frame: %w", t, err)
	}
	return nil
}

// ReadFrame reads and validates one frame. It returns io.EOF when the
// peer closed cleanly between frames, io.ErrUnexpectedEOF on mid-frame
// truncation, *VersionError on a version mismatch and *ProtocolError on
// any other malformed input (bad magic, unknown type, oversized length,
// checksum mismatch). The payload is fully read before returning.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != 'N' || hdr[1] != 'P' {
		return 0, nil, &ProtocolError{Reason: "bad magic"}
	}
	if hdr[2] != Version {
		return 0, nil, &VersionError{Got: int(hdr[2]), Want: Version}
	}
	t := FrameType(hdr[3])
	if t < FrameHello || t > frameTypeMax {
		return 0, nil, &ProtocolError{Reason: fmt.Sprintf("unknown frame type %d", hdr[3])}
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxFrame {
		return 0, nil, &ProtocolError{Reason: fmt.Sprintf("frame length %d exceeds MaxFrame %d", n, MaxFrame)}
	}
	sum := binary.BigEndian.Uint32(hdr[8:12])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, &ProtocolError{Reason: fmt.Sprintf("%s payload checksum mismatch", t)}
	}
	return t, payload, nil
}

// Decode unmarshals a frame payload, converting JSON failures into
// *ProtocolError so callers can classify them as transport corruption.
func Decode(t FrameType, payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return &ProtocolError{Reason: fmt.Sprintf("malformed %s payload: %v", t, err)}
	}
	return nil
}
