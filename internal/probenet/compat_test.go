package probenet_test

import (
	"encoding/json"
	"testing"

	"numaperf/internal/memhist"
	"numaperf/internal/perf"
	"numaperf/internal/probenet"
)

// Wire-compatibility suite for the sampling-fidelity fields. The probe
// protocol carries JSON bodies, and both ends must tolerate the other
// predating this PR: a pre-fidelity client talking to a new probe must
// decode responses that carry quality/confidence annotations, and a new
// client must accept responses (and stats) from a probe that has never
// heard of them. The structs below spell out the pre-PR shapes
// literally instead of importing them, so the test keeps guarding the
// wire format even as the Go types evolve.

// oldHistogram is the response body shape before the fidelity fields.
type oldHistogram struct {
	Bounds    []uint64
	Counts    []float64
	Uncertain []bool
	Exact     bool
	Source    string
	Origin    string `json:",omitempty"`
}

// oldRequest is the request body shape before the Adaptive flag.
type oldRequest struct {
	Workload    string   `json:"workload"`
	Machine     string   `json:"machine,omitempty"`
	Threads     int      `json:"threads,omitempty"`
	Bounds      []uint64 `json:"bounds,omitempty"`
	SliceCycles uint64   `json:"slice_cycles,omitempty"`
	Reps        int      `json:"reps,omitempty"`
	Exact       bool     `json:"exact,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
}

func TestOldClientDecodesAnnotatedResponse(t *testing.T) {
	h := &memhist.Histogram{
		Bounds:    []uint64{4, 8, 16},
		Counts:    []float64{1, 2, 3},
		Uncertain: []bool{false, false, false},
		Source:    "mlc-local",
		Origin:    memhist.OriginProbe,
		Quality: &perf.SampleQuality{
			RecordsSeen: 100, RecordsKept: 90, DroppedOverrun: 10, TotalCycles: 1000,
		},
		Confidence: []float64{1, 0.4, 1},
	}
	body, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var old oldHistogram
	if err := probenet.Decode(probenet.FrameResponse, body, &old); err != nil {
		t.Fatalf("pre-fidelity client rejected annotated response: %v", err)
	}
	if len(old.Bounds) != 3 || old.Counts[2] != 3 || old.Source != "mlc-local" {
		t.Errorf("pre-fidelity client mis-decoded the payload: %+v", old)
	}
}

func TestNewClientDecodesBareResponse(t *testing.T) {
	body, err := json.Marshal(oldHistogram{
		Bounds:    []uint64{4, 8, 16},
		Counts:    []float64{1, 2, 3},
		Uncertain: []bool{false, false, false},
		Source:    "mlc-local",
	})
	if err != nil {
		t.Fatal(err)
	}
	var h memhist.Histogram
	if err := probenet.Decode(probenet.FrameResponse, body, &h); err != nil {
		t.Fatalf("new client rejected pre-fidelity response: %v", err)
	}
	if h.Quality != nil || h.Confidence != nil {
		t.Errorf("absent fidelity fields must stay nil, got quality %+v confidence %v", h.Quality, h.Confidence)
	}
	if h.Coverage() != 1 || h.BinConfidence(1) != 1 {
		t.Error("a report-less histogram must default to full confidence")
	}
}

func TestOldProbeDecodesAdaptiveRequest(t *testing.T) {
	body, err := json.Marshal(memhist.ProbeRequest{Workload: "mlc-local", Adaptive: true, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	var old oldRequest
	if err := probenet.Decode(probenet.FrameRequest, body, &old); err != nil {
		t.Fatalf("pre-fidelity probe rejected adaptive request: %v", err)
	}
	if old.Workload != "mlc-local" || old.Reps != 2 {
		t.Errorf("pre-fidelity probe mis-decoded the payload: %+v", old)
	}
}

func TestNewProbeDecodesBareRequest(t *testing.T) {
	body, err := json.Marshal(oldRequest{Workload: "mlc-local", Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	var req memhist.ProbeRequest
	if err := probenet.Decode(probenet.FrameRequest, body, &req); err != nil {
		t.Fatalf("new probe rejected pre-fidelity request: %v", err)
	}
	if req.Adaptive {
		t.Error("absent adaptive flag must decode as false")
	}
	if err := req.Validate(); err != nil {
		t.Errorf("pre-fidelity request must still validate: %v", err)
	}
}

func TestOldClientDecodesFidelityStats(t *testing.T) {
	stats, err := json.Marshal(memhist.ProbeStats{
		Accepted: 3, Served: 2, SamplesDropped: 41, ThrottledCycles: 1000, LowCoverageServed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The pre-fidelity stats shape: counters only.
	var old struct {
		Accepted uint64 `json:"accepted"`
		Served   uint64 `json:"served"`
		Panics   uint64 `json:"panics"`
	}
	if err := json.Unmarshal(stats, &old); err != nil {
		t.Fatalf("pre-fidelity client rejected extended stats: %v", err)
	}
	if old.Accepted != 3 || old.Served != 2 {
		t.Errorf("pre-fidelity client mis-decoded stats: %+v", old)
	}
	// And the zero fidelity counters vanish from the wire entirely, so
	// a lossless probe's PING payload is byte-identical to pre-PR.
	bare, err := json.Marshal(memhist.ProbeStats{Accepted: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"samples_dropped", "throttled_cycles", "low_coverage_served"} {
		if jsonHasField(t, bare, field) {
			t.Errorf("zero fidelity counter %q must be omitted from the wire", field)
		}
	}
}

func jsonHasField(t *testing.T, body []byte, field string) bool {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	_, ok := m[field]
	return ok
}
