package probenet

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		ft FrameType
		v  any
	}{
		{FrameHello, &Hello{Version: 1, Workloads: []string{"triad"}, Machines: []string{"2s"}, MaxFrame: MaxFrame}},
		{FrameRequest, &Request{ID: 7, TimeoutMillis: 1500, Body: json.RawMessage(`{"workload":"triad"}`)}},
		{FrameResponse, &Response{ID: 7, Body: json.RawMessage(`{"Bounds":[1,2]}`)}},
		{FrameError, &ErrorMsg{ID: 7, Code: CodeOverloaded, Message: "full"}},
		{FramePing, &Ping{ID: 9}},
		{FramePong, &Pong{ID: 9, Stats: json.RawMessage(`{"served":3}`)}},
	}
	var buf bytes.Buffer
	for _, c := range cases {
		if err := WriteFrame(&buf, c.ft, c.v); err != nil {
			t.Fatalf("write %s: %v", c.ft, err)
		}
	}
	for _, c := range cases {
		ft, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", c.ft, err)
		}
		if ft != c.ft {
			t.Fatalf("read type %s, want %s", ft, c.ft)
		}
		want, _ := json.Marshal(c.v)
		if !bytes.Equal(payload, want) {
			t.Errorf("%s payload = %s, want %s", ft, payload, want)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("drained stream: err = %v, want io.EOF", err)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	big := Request{Body: json.RawMessage(`"` + strings.Repeat("x", MaxFrame) + `"`)}
	if err := WriteFrame(io.Discard, FrameRequest, &big); err == nil {
		t.Error("oversized write must fail")
	}
	// A forged header claiming an enormous payload must be rejected
	// before allocation.
	var buf bytes.Buffer
	hdr := make([]byte, headerSize)
	hdr[0], hdr[1], hdr[2], hdr[3] = 'N', 'P', Version, byte(FramePing)
	binary.BigEndian.PutUint32(hdr[4:8], MaxFrame+1)
	buf.Write(hdr)
	_, _, err := ReadFrame(&buf)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Errorf("oversize header: err = %v, want ProtocolError", err)
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	var pe *ProtocolError

	_, _, err := ReadFrame(strings.NewReader("GARBAGE-GARBAGE-GARBAGE"))
	if !errors.As(err, &pe) {
		t.Errorf("bad magic: err = %v, want ProtocolError", err)
	}

	var buf bytes.Buffer
	_ = WriteFrame(&buf, FramePing, &Ping{ID: 1})
	b := buf.Bytes()
	b[2] = 99 // wrong version
	var ve *VersionError
	if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.As(err, &ve) {
		t.Errorf("version: err = %v, want VersionError", err)
	}

	buf.Reset()
	_ = WriteFrame(&buf, FramePing, &Ping{ID: 1})
	b = buf.Bytes()
	b[3] = 200 // unknown frame type
	if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.As(err, &pe) {
		t.Errorf("unknown type: err = %v, want ProtocolError", err)
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameResponse, &Response{ID: 3, Body: json.RawMessage(`{"Counts":[1,2,3]}`)}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Flip one payload bit: the checksum must catch it even though the
	// JSON may still parse.
	b[headerSize+10] ^= 0x04
	_, _, err := ReadFrame(bytes.NewReader(b))
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("corrupted payload: err = %v, want ProtocolError", err)
	}
	if !strings.Contains(pe.Reason, "checksum") {
		t.Errorf("reason = %q, want checksum mismatch", pe.Reason)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FramePong, &Pong{ID: 5}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Every proper prefix must yield EOF (empty) or ErrUnexpectedEOF.
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestDecode(t *testing.T) {
	var p Ping
	if err := Decode(FramePing, []byte(`{"id":4}`), &p); err != nil || p.ID != 4 {
		t.Errorf("Decode = %v, ping %+v", err, p)
	}
	err := Decode(FramePing, []byte(`{`), &p)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Errorf("malformed payload: err = %v, want ProtocolError", err)
	}
}

type fakeTimeout struct{}

func (fakeTimeout) Error() string   { return "fake timeout" }
func (fakeTimeout) Timeout() bool   { return true }
func (fakeTimeout) Temporary() bool { return true }

func TestIsTransient(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"remote error", &RemoteError{Code: CodeOverloaded}, false},
		{"wrapped remote error", errorsJoin(&RemoteError{Code: CodeShuttingDown}), false},
		{"version mismatch", &VersionError{Got: 2, Want: 1}, false},
		{"protocol violation", &ProtocolError{Reason: "bad magic"}, true},
		{"eof", io.EOF, true},
		{"unexpected eof", io.ErrUnexpectedEOF, true},
		{"closed", net.ErrClosed, true},
		{"refused", &net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}, true},
		{"reset", syscall.ECONNRESET, true},
		{"timeout", fakeTimeout{}, true},
		{"plain error", errors.New("nope"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func errorsJoin(err error) error {
	return &wrapErr{err}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }

func TestErrorStrings(t *testing.T) {
	if s := (&RemoteError{Code: CodeOverloaded}).Error(); !strings.Contains(s, "overloaded") {
		t.Errorf("RemoteError = %q", s)
	}
	if s := (&RemoteError{Code: CodeBadRequest, Message: "no"}).Error(); !strings.Contains(s, "no") {
		t.Errorf("RemoteError = %q", s)
	}
	if s := (&VersionError{Got: 3, Want: 1}).Error(); !strings.Contains(s, "3") {
		t.Errorf("VersionError = %q", s)
	}
	for ft := FrameHello; ft <= frameTypeMax; ft++ {
		if strings.HasPrefix(ft.String(), "FrameType(") {
			t.Errorf("frame type %d unnamed", ft)
		}
	}
	if FrameType(99).String() != "FrameType(99)" {
		t.Error("unknown frame type string")
	}
}

func TestWriteFrameSingleWrite(t *testing.T) {
	// Header and payload must leave in one Write call so fault scripts
	// and real sockets see back-to-back bytes.
	w := &countingWriter{}
	if err := WriteFrame(w, FramePing, &Ping{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if w.calls != 1 {
		t.Errorf("WriteFrame used %d writes, want 1", w.calls)
	}
}

type countingWriter struct{ calls int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.calls++
	return len(p), nil
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	if b.Base != 50*time.Millisecond || b.Max != 2*time.Second {
		t.Errorf("defaults = %v/%v", b.Base, b.Max)
	}
	if b := NewBackoff(time.Second, time.Millisecond, 1); b.Max != time.Second {
		t.Errorf("max < base must clamp to base, got %v", b.Max)
	}
}
