package probenet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"time"
)

// ErrorCode is the machine-readable code carried by ERROR frames. Codes
// describe the probe's verdict on the request, so a client never
// retries them — the same request would fail again.
type ErrorCode string

const (
	// CodeBadRequest rejects a request that fails validation.
	CodeBadRequest ErrorCode = "bad-request"
	// CodeUnknownWorkload rejects a workload the probe cannot run.
	CodeUnknownWorkload ErrorCode = "unknown-workload"
	// CodeUnknownMachine rejects an unrecognised machine model.
	CodeUnknownMachine ErrorCode = "unknown-machine"
	// CodeOverloaded rejects a connection beyond the concurrency limit.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeShuttingDown rejects work arriving during a graceful drain.
	CodeShuttingDown ErrorCode = "shutting-down"
	// CodeQuarantined rejects a fleet probe whose strike count crossed
	// the coordinator's quarantine threshold; the probe must not retry.
	CodeQuarantined ErrorCode = "quarantined"
	// CodeInternal reports a measurement failure inside the probe.
	CodeInternal ErrorCode = "internal"
)

// RemoteError is a well-formed ERROR frame received from the peer. It
// is never transient: the probe understood the request and rejected it.
// Backpressure codes (CodeOverloaded, CodeShuttingDown) may carry a
// RetryAfterMillis hint — the peer's suggested wait before trying
// again; zero means the peer offered none.
type RemoteError struct {
	Code             ErrorCode
	Message          string
	RetryAfterMillis int64
}

func (e *RemoteError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("probe error [%s]", e.Code)
	}
	return fmt.Sprintf("probe error [%s]: %s", e.Code, e.Message)
}

// ProtocolError reports a malformed byte stream: bad magic, unknown
// frame type, oversized length, checksum mismatch or undecodable
// payload. It is transient — the bytes were damaged in flight, so a
// fresh connection may well succeed.
type ProtocolError struct {
	Reason string
}

func (e *ProtocolError) Error() string { return "probenet: protocol violation: " + e.Reason }

// VersionError reports a protocol version mismatch. It is not
// transient: reconnecting to the same peer yields the same version.
type VersionError struct {
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("probenet: protocol version %d, want %d", e.Got, e.Want)
}

// IsBackpressure reports whether err is a well-formed rejection that
// signals overload rather than a verdict on the request itself: the
// probe was too busy (CodeOverloaded) or draining (CodeShuttingDown).
// Unlike other RemoteErrors the same request is perfectly serviceable
// later, so callers may retry after the RetryAfterMillis hint — the
// fetch client waits it out, the fleet coordinator re-dispatches the
// cell elsewhere without charging the probe a strike.
func IsBackpressure(err error) bool {
	var re *RemoteError
	if !errors.As(err, &re) {
		return false
	}
	return re.Code == CodeOverloaded || re.Code == CodeShuttingDown
}

// RetryAfter extracts the backpressure hint from err, or 0 when err is
// not a backpressure rejection or carries no hint. Negative hints from
// a buggy or malicious peer are clamped to 0 so they can never drive a
// caller's arithmetic backwards.
func RetryAfter(err error) time.Duration {
	var re *RemoteError
	if !errors.As(err, &re) || !IsBackpressure(err) {
		return 0
	}
	if re.RetryAfterMillis <= 0 {
		return 0
	}
	return time.Duration(re.RetryAfterMillis) * time.Millisecond
}

// IsTransient classifies an error from a fetch attempt: true means a
// retry on a fresh connection has a chance of succeeding (refused,
// reset, timeout, truncated or corrupted stream); false means the
// failure is structural (a well-formed ERROR frame, a version mismatch,
// a validation failure) and retrying would only repeat it.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	var ve *VersionError
	if errors.As(err, &ve) {
		return false
	}
	var pe *ProtocolError
	if errors.As(err, &pe) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	if errors.Is(err, net.ErrClosed) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		// Timeouts and any other dial/read/write level failure.
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}
