// Fuzz target for the fleet control plane's share of the wire
// protocol: registration HELLOs carrying a probe identity and the
// HEARTBEAT beacon. A coordinator faces whole fleets of remote peers,
// so the registration path must uphold the same guarantees FuzzReadFrame
// proves for the classic frames — no panic, bounded allocation, exactly
// one frame consumed per call — and additionally that payload decoding
// fails only as *ProtocolError and that decoded identities are usable
// (a frame that decodes carries the fields it was sent with, never
// garbage that a health tracker would index by).
package probenet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

func FuzzReadFleetFrame(f *testing.F) {
	register := seedFrame(FrameHello, Hello{
		Version: Version, ProbeID: "probe-1", Instance: 3,
		Workloads: []string{"mlc-local"}, MaxFrame: MaxFrame,
	})
	ack := seedFrame(FrameHello, Hello{Version: Version, MaxFrame: MaxFrame})
	beat := seedFrame(FrameHeartbeat, Heartbeat{ProbeID: "probe-1", Instance: 3, Seq: 42, InFlight: 1})
	f.Add([]byte{})
	f.Add(register)
	f.Add(ack)
	f.Add(beat)
	f.Add(append(append([]byte{}, register...), beat...)) // register then heartbeat
	f.Add(beat[:headerSize-1])                            // torn heartbeat header
	f.Add(beat[:len(beat)-3])                             // torn heartbeat payload
	corrupt := append([]byte{}, beat...)
	corrupt[len(corrupt)-1] ^= 0xff // flip a payload bit under the CRC
	f.Add(corrupt)
	unknown := append([]byte{}, beat...)
	unknown[3] = byte(frameTypeMax) + 1 // frame type from a future protocol
	binary.BigEndian.PutUint32(unknown[4:8], uint32(len(unknown)-headerSize))
	f.Add(unknown)
	notJSON := seedRawFrame(FrameHeartbeat, []byte("not json"))
	f.Add(notJSON)
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := bytes.NewReader(raw)
		for {
			before := r.Len()
			ft, payload, err := ReadFrame(r)
			if err != nil {
				var pe *ProtocolError
				var ve *VersionError
				switch {
				case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
				case errors.As(err, &pe), errors.As(err, &ve):
				default:
					t.Fatalf("untyped frame error: %v", err)
				}
				return
			}
			if len(payload) > MaxFrame {
				t.Fatalf("accepted %d-byte payload past MaxFrame", len(payload))
			}
			if got := before - r.Len(); got != headerSize+len(payload) {
				t.Fatalf("consumed %d bytes for a %d-byte payload", got, len(payload))
			}
			switch ft {
			case FrameHello:
				var h Hello
				if derr := Decode(ft, payload, &h); derr != nil {
					var pe *ProtocolError
					if !errors.As(derr, &pe) {
						t.Fatalf("untyped HELLO decode error: %v", derr)
					}
				}
			case FrameHeartbeat:
				var hb Heartbeat
				if derr := Decode(ft, payload, &hb); derr != nil {
					var pe *ProtocolError
					if !errors.As(derr, &pe) {
						t.Fatalf("untyped HEARTBEAT decode error: %v", derr)
					}
				}
			}
		}
	})
}

// seedRawFrame frames an arbitrary payload without JSON-encoding it, so
// seeds can carry payloads that fail Decode but pass the CRC.
func seedRawFrame(t FrameType, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	buf[0], buf[1] = 'N', 'P'
	buf[2] = Version
	buf[3] = byte(t)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	return buf
}
