package probenet_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"numaperf/internal/probenet"
)

// Wire-compatibility suite for the fleet identity fields. The HELLO
// payload gained optional probe_id/instance fields for fleet
// registration; both ends of the classic front-end↔probe exchange must
// tolerate a peer from the other side of that change. As in the
// fidelity compat suite, the pre-fleet shape is spelled out literally
// so the test keeps guarding the wire bytes as the Go types evolve.

// oldHello is the HELLO payload shape before the fleet identity fields.
type oldHello struct {
	Version   int      `json:"version"`
	Workloads []string `json:"workloads,omitempty"`
	Machines  []string `json:"machines,omitempty"`
	MaxFrame  int      `json:"max_frame,omitempty"`
}

func TestOldClientDecodesFleetHello(t *testing.T) {
	// A new probe that advertises its fleet identity must still be
	// usable by a pre-fleet front end: unknown JSON fields are dropped.
	body, err := json.Marshal(probenet.Hello{
		Version:   probenet.Version,
		Workloads: []string{"mlc-local"},
		MaxFrame:  probenet.MaxFrame,
		ProbeID:   "probe-7",
		Instance:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var old oldHello
	if err := probenet.Decode(probenet.FrameHello, body, &old); err != nil {
		t.Fatalf("pre-fleet client rejected identity-carrying HELLO: %v", err)
	}
	if old.Version != probenet.Version || len(old.Workloads) != 1 || old.MaxFrame != probenet.MaxFrame {
		t.Errorf("pre-fleet client mis-decoded the payload: %+v", old)
	}
}

func TestNewPeerDecodesOldHello(t *testing.T) {
	// A pre-fleet probe's HELLO carries no identity; the new decoder
	// must leave the fields zero so a coordinator can reject the
	// registration with a typed verdict instead of mis-indexing it.
	body, err := json.Marshal(oldHello{
		Version:   probenet.Version,
		Workloads: []string{"mlc-local"},
		MaxFrame:  probenet.MaxFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	var h probenet.Hello
	if err := probenet.Decode(probenet.FrameHello, body, &h); err != nil {
		t.Fatalf("new peer rejected pre-fleet HELLO: %v", err)
	}
	if h.ProbeID != "" || h.Instance != 0 {
		t.Errorf("absent identity fields must decode zero, got %q/%d", h.ProbeID, h.Instance)
	}
}

func TestIdentityFreeHelloWireBytesUnchanged(t *testing.T) {
	// The classic handshake must stay byte-identical: a probe that
	// never sets the identity fields emits exactly the pre-fleet frame.
	newShape := probenet.Hello{
		Version:   probenet.Version,
		Workloads: []string{"mlc-local"},
		Machines:  []string{"dl580"},
		MaxFrame:  probenet.MaxFrame,
	}
	oldShape := oldHello{
		Version:   probenet.Version,
		Workloads: []string{"mlc-local"},
		Machines:  []string{"dl580"},
		MaxFrame:  probenet.MaxFrame,
	}
	var a, b bytes.Buffer
	if err := probenet.WriteFrame(&a, probenet.FrameHello, newShape); err != nil {
		t.Fatal(err)
	}
	if err := probenet.WriteFrame(&b, probenet.FrameHello, oldShape); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("identity-free HELLO frame bytes changed:\nnew %q\nold %q", a.Bytes(), b.Bytes())
	}
}

func TestOldPeerRejectsHeartbeatFrameTyped(t *testing.T) {
	// A HEARTBEAT frame reaching a pre-fleet peer (frame types only up
	// to PONG) must fail within the documented taxonomy — the pre-fleet
	// decoder rejects unknown types as *ProtocolError, dropping the
	// connection rather than corrupting state. Reproduce the old
	// decoder's verdict by checking the type range directly.
	var buf bytes.Buffer
	if err := probenet.WriteFrame(&buf, probenet.FrameHeartbeat, probenet.Heartbeat{ProbeID: "p", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	const oldFrameTypeMax = probenet.FramePong
	if ft := probenet.FrameType(raw[3]); ft <= oldFrameTypeMax {
		t.Fatalf("HEARTBEAT frame type %d collides with the pre-fleet range", ft)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	in := probenet.Heartbeat{ProbeID: "probe-3", Instance: 9, Seq: 17, InFlight: 2,
		Stats: json.RawMessage(`{"served":4}`)}
	var buf bytes.Buffer
	if err := probenet.WriteFrame(&buf, probenet.FrameHeartbeat, in); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := probenet.ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != probenet.FrameHeartbeat {
		t.Fatalf("frame type %s, want HEARTBEAT", ft)
	}
	var out probenet.Heartbeat
	if err := probenet.Decode(ft, payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.ProbeID != in.ProbeID || out.Instance != in.Instance || out.Seq != in.Seq || out.InFlight != in.InFlight {
		t.Errorf("round trip mangled heartbeat: %+v", out)
	}
}
