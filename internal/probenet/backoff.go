package probenet

import (
	"math/rand"
	"time"
)

// Backoff yields capped exponential retry delays with deterministic,
// seedable jitter. Determinism is a repro invariant: given the same
// seed, the exact delay schedule is reproducible, so tests can assert
// it and chaos runs can be replayed. No wall-clock randomness is used.
type Backoff struct {
	// Base is the delay before the first retry (default 50 ms).
	Base time.Duration
	// Max caps the uncapped exponential growth (default 2 s).
	Max time.Duration

	rng *rand.Rand
}

// NewBackoff builds a deterministic backoff schedule. Non-positive base
// or max select the defaults.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if max < base {
		max = base
	}
	return &Backoff{Base: base, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the wait before retry number attempt (0-based): the
// capped exponential d = min(Base·2^attempt, Max) with half jitter,
// drawn uniformly from [d/2, d]. Successive calls advance the seeded
// RNG, so the full schedule is a pure function of the seed.
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.Base
	for i := 0; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}
