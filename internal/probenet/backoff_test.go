package probenet

import (
	"testing"
	"time"
)

// TestBackoffExactSchedule pins the repro invariant: the delay schedule
// is a pure function of the seed, with no wall-clock randomness. The
// values are the frozen output of math/rand(seed=7) under half jitter
// over min(100ms·2ⁿ, 2s).
func TestBackoffExactSchedule(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, 2*time.Second, 7)
	want := []time.Duration{
		81362415,   // attempt 0
		199763484,  // attempt 1
		382437318,  // attempt 2
		736364760,  // attempt 3
		857678779,  // attempt 4
		1224067029, // attempt 5
		1025830531, // attempt 6
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestBackoffDeterministicAcrossInstances(t *testing.T) {
	a := NewBackoff(30*time.Millisecond, time.Second, 42)
	b := NewBackoff(30*time.Millisecond, time.Second, 42)
	for i := 0; i < 20; i++ {
		if da, db := a.Delay(i), b.Delay(i); da != db {
			t.Fatalf("attempt %d: %v != %v for identical seeds", i, da, db)
		}
	}
	c := NewBackoff(30*time.Millisecond, time.Second, 43)
	same := true
	for i := 0; i < 20; i++ {
		if NewBackoff(30*time.Millisecond, time.Second, 42).Delay(i) != c.Delay(i) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical schedule")
	}
}

func TestBackoffBoundsAndCap(t *testing.T) {
	base, max := 10*time.Millisecond, 160*time.Millisecond
	b := NewBackoff(base, max, 3)
	for attempt := 0; attempt < 12; attempt++ {
		uncapped := base
		for i := 0; i < attempt && uncapped < max; i++ {
			uncapped *= 2
		}
		if uncapped > max {
			uncapped = max
		}
		d := b.Delay(attempt)
		if d < uncapped/2 || d > uncapped {
			t.Errorf("Delay(%d) = %v outside [%v, %v]", attempt, d, uncapped/2, uncapped)
		}
	}
	// Far past the cap the delay must stay bounded by Max.
	if d := b.Delay(63); d > max {
		t.Errorf("Delay(63) = %v exceeds cap %v", d, max)
	}
}
