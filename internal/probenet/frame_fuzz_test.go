// Fuzz target for the probe protocol's frame decoder. ReadFrame faces
// the network: on arbitrary bytes it must never panic, never allocate
// past MaxFrame, consume exactly one frame's worth of input per call,
// and fail only within its documented error taxonomy (io.EOF between
// frames, io.ErrUnexpectedEOF mid-frame, *VersionError, *ProtocolError).
package probenet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func seedFrame(t FrameType, v any) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, t, v); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzReadFrame(f *testing.F) {
	hello := seedFrame(FrameHello, Hello{Version: Version, Workloads: []string{"sort"}, MaxFrame: MaxFrame})
	ping := seedFrame(FramePing, Ping{ID: 7})
	errf := seedFrame(FrameError, ErrorMsg{ID: 3, Code: "overloaded", Message: "busy"})
	f.Add([]byte{})
	f.Add(hello)
	f.Add(errf)
	f.Add(append(append([]byte{}, hello...), ping...)) // two frames back to back
	f.Add(hello[:headerSize-3])                        // torn header
	f.Add(hello[:len(hello)-2])                        // torn payload
	future := append([]byte{}, hello...)
	future[2] = 9 // version from the future
	f.Add(future)
	oversize := append([]byte{}, hello...)
	binary.BigEndian.PutUint32(oversize[4:8], MaxFrame+1)
	f.Add(oversize)
	corrupt := append([]byte{}, ping...)
	corrupt[len(corrupt)-1] ^= 0xff // flip a payload bit under the CRC
	f.Add(corrupt)
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n")) // a peer speaking the wrong protocol
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := bytes.NewReader(raw)
		for {
			before := r.Len()
			ft, payload, err := ReadFrame(r)
			if err != nil {
				var pe *ProtocolError
				var ve *VersionError
				switch {
				case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
				case errors.As(err, &pe), errors.As(err, &ve):
				default:
					t.Fatalf("untyped frame error: %v", err)
				}
				return
			}
			if ft < FrameHello || ft > frameTypeMax {
				t.Fatalf("accepted unknown frame type %d", ft)
			}
			if len(payload) > MaxFrame {
				t.Fatalf("accepted %d-byte payload past MaxFrame", len(payload))
			}
			if got := before - r.Len(); got != headerSize+len(payload) {
				t.Fatalf("consumed %d bytes for a %d-byte payload", got, len(payload))
			}
		}
	})
}
