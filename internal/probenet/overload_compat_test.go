package probenet_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"numaperf/internal/probenet"
)

// Wire-compatibility suite for the overload-protection retry-after
// hint. ERROR frames gained an omitempty RetryAfterMillis field; both
// ends must tolerate a peer that predates it, and — stricter — any
// ERROR frame that carries no hint must be byte-identical to the frame
// a pre-overload peer would have produced, in both directions. The
// struct below spells out the pre-PR payload shape literally instead
// of importing it, so the test keeps guarding the wire format even as
// the Go type evolves.

// oldErrorMsg is the ERROR payload shape before the retry-after hint.
type oldErrorMsg struct {
	ID      uint64             `json:"id"`
	Code    probenet.ErrorCode `json:"code"`
	Message string             `json:"message,omitempty"`
}

func frameBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := probenet.WriteFrame(&buf, probenet.FrameError, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLegacyErrorFramesByteIdentical(t *testing.T) {
	// Every code, with and without a message: a new peer that sets no
	// hint emits exactly the bytes an old peer would have.
	for _, code := range []probenet.ErrorCode{
		probenet.CodeBadRequest, probenet.CodeUnknownWorkload, probenet.CodeUnknownMachine,
		probenet.CodeOverloaded, probenet.CodeShuttingDown, probenet.CodeQuarantined,
		probenet.CodeInternal,
	} {
		for _, msg := range []string{"", "probe at connection limit 4"} {
			oldFrame := frameBytes(t, oldErrorMsg{ID: 7, Code: code, Message: msg})
			newFrame := frameBytes(t, probenet.ErrorMsg{ID: 7, Code: code, Message: msg})
			if !bytes.Equal(oldFrame, newFrame) {
				t.Errorf("code %s: hintless ERROR frame differs from the pre-overload bytes\nold: %q\nnew: %q",
					code, oldFrame, newFrame)
			}
		}
	}
}

func TestZeroRetryAfterOmittedFromWire(t *testing.T) {
	body, err := json.Marshal(probenet.ErrorMsg{ID: 1, Code: probenet.CodeOverloaded})
	if err != nil {
		t.Fatal(err)
	}
	if jsonHasField(t, body, "retry_after_ms") {
		t.Error("zero retry_after_ms must be omitted from the wire")
	}
}

func TestOldClientDecodesHintedError(t *testing.T) {
	body, err := json.Marshal(probenet.ErrorMsg{
		ID: 3, Code: probenet.CodeOverloaded, Message: "shedding", RetryAfterMillis: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	var old oldErrorMsg
	if err := probenet.Decode(probenet.FrameError, body, &old); err != nil {
		t.Fatalf("pre-overload client rejected hinted ERROR: %v", err)
	}
	if old.ID != 3 || old.Code != probenet.CodeOverloaded || old.Message != "shedding" {
		t.Errorf("pre-overload client mis-decoded the payload: %+v", old)
	}
}

func TestNewClientDecodesBareError(t *testing.T) {
	body, err := json.Marshal(oldErrorMsg{ID: 9, Code: probenet.CodeShuttingDown, Message: "draining"})
	if err != nil {
		t.Fatal(err)
	}
	var em probenet.ErrorMsg
	if err := probenet.Decode(probenet.FrameError, body, &em); err != nil {
		t.Fatalf("new client rejected pre-overload ERROR: %v", err)
	}
	if em.RetryAfterMillis != 0 {
		t.Errorf("absent retry_after_ms must decode as 0, got %d", em.RetryAfterMillis)
	}
	if em.ID != 9 || em.Code != probenet.CodeShuttingDown {
		t.Errorf("new client mis-decoded the payload: %+v", em)
	}
}

func TestBackpressureClassification(t *testing.T) {
	over := &probenet.RemoteError{Code: probenet.CodeOverloaded, RetryAfterMillis: 25}
	if !probenet.IsBackpressure(over) {
		t.Error("overloaded must classify as backpressure")
	}
	if got := probenet.RetryAfter(over); got.Milliseconds() != 25 {
		t.Errorf("RetryAfter = %v, want 25ms", got)
	}
	if probenet.IsTransient(over) {
		t.Error("backpressure is not transient: the request was understood")
	}
	bad := &probenet.RemoteError{Code: probenet.CodeBadRequest, RetryAfterMillis: 25}
	if probenet.IsBackpressure(bad) {
		t.Error("bad-request must not classify as backpressure")
	}
	if probenet.RetryAfter(bad) != 0 {
		t.Error("non-backpressure errors carry no retry-after")
	}
	neg := &probenet.RemoteError{Code: probenet.CodeOverloaded, RetryAfterMillis: -5}
	if probenet.RetryAfter(neg) != 0 {
		t.Error("negative hints must clamp to zero")
	}
	if probenet.IsBackpressure(nil) || probenet.RetryAfter(nil) != 0 {
		t.Error("nil error must classify as nothing")
	}
}
