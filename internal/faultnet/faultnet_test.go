package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pair returns a wrapped server-side conn (per script) talking to a raw
// client-side conn over real TCP.
func pair(t *testing.T, script *ConnScript) (server net.Conn, client net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fl := Wrap(l, Options{Seed: 11, Script: func(int) *ConnScript { return script }})

	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = fl.Accept()
	}()
	client, cerr := net.Dial("tcp", l.Addr().String())
	if cerr != nil {
		t.Fatal(cerr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close(); client.Close() })
	return server, client
}

func TestCorruptWritePreservesCallerBuffer(t *testing.T) {
	server, client := pair(t, &ConnScript{CorruptWriteAt: 3})
	msg := []byte("hello-fault")
	orig := append([]byte(nil), msg...)
	if _, err := server.Write(msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, orig) {
		t.Error("Write mutated the caller's buffer")
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("scripted corruption did not alter the stream")
	}
	// Exactly byte 3 (1-based) differs, by exactly one bit.
	for i := range got {
		if i == 2 {
			if d := got[i] ^ orig[i]; d == 0 || d&(d-1) != 0 {
				t.Errorf("byte 3 xor = %08b, want a single flipped bit", d)
			}
		} else if got[i] != orig[i] {
			t.Errorf("byte %d corrupted, script targets byte 3 only", i+1)
		}
	}
}

func TestCorruptRead(t *testing.T) {
	server, client := pair(t, &ConnScript{CorruptReadAt: 2})
	go client.Write([]byte("abcd"))
	got := make([]byte, 4)
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 'a' || got[2] != 'c' || got[3] != 'd' {
		t.Errorf("bytes outside the script changed: %q", got)
	}
	if got[1] == 'b' {
		t.Error("scripted read corruption did not fire")
	}
}

func TestTruncateWrite(t *testing.T) {
	server, client := pair(t, &ConnScript{TruncateWriteAt: 5})
	n, err := server.Write([]byte("0123456789"))
	if n != 5 {
		t.Errorf("wrote %d bytes, want 5", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", err)
	}
	// Subsequent writes fail outright.
	if _, err := server.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("post-truncation write err = %v", err)
	}
	// The peer sees exactly the truncated prefix, then EOF.
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Errorf("peer saw %q, want %q", got, "01234")
	}
}

func TestResetRead(t *testing.T) {
	server, client := pair(t, &ConnScript{ResetReadAt: 4})
	go client.Write([]byte("0123456789"))
	got := make([]byte, 4)
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "0123" {
		t.Errorf("read %q before reset", got)
	}
	if _, err := server.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Errorf("read past reset: err = %v, want ErrInjected", err)
	}
}

func TestDelays(t *testing.T) {
	server, client := pair(t, &ConnScript{ReadDelay: 30 * time.Millisecond, WriteDelay: 30 * time.Millisecond})
	go func() {
		client.Write([]byte("x"))
	}()
	start := time.Now()
	if _, err := server.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("read returned after %v, want >= 30ms", d)
	}
	start = time.Now()
	if _, err := server.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("write returned after %v, want >= 30ms", d)
	}
}

func TestFailFirstAccepts(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fl := Wrap(l, Options{FailFirstAccepts: 2})

	results := make(chan error, 3)
	go func() {
		for i := 0; i < 3; i++ {
			c, err := fl.Accept()
			if err == nil {
				c.Close()
			}
			results <- err
		}
	}()
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	for i := 0; i < 2; i++ {
		err := <-results
		if !errors.Is(err, ErrInjected) {
			t.Errorf("accept %d: err = %v, want ErrInjected", i, err)
		}
		te, ok := err.(interface{ Temporary() bool })
		if !ok || !te.Temporary() {
			t.Errorf("accept %d error must be temporary", i)
		}
	}
	if err := <-results; err != nil {
		t.Errorf("accept 3 failed: %v", err)
	}
	if fl.Accepted() != 1 {
		t.Errorf("Accepted() = %d, want 1", fl.Accepted())
	}
}

func TestPartitionThenHeal(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fl := Wrap(l, Options{})
	fl.SetPartition(true)

	var mu sync.Mutex
	var served []net.Conn
	go func() {
		for {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			served = append(served, c)
			mu.Unlock()
			go func(c net.Conn) { c.Write([]byte("ok")); c.Close() }(c)
		}
	}()

	// During the partition a dial may succeed at TCP level, but the
	// connection dies before any byte arrives.
	c, err := net.Dial("tcp", l.Addr().String())
	if err == nil {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := c.Read(make([]byte, 2)); rerr == nil {
			t.Error("read during partition must fail")
		}
		c.Close()
	}

	fl.SetPartition(false)
	c, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	got := make([]byte, 2)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if string(got) != "ok" {
		t.Errorf("read %q after heal", got)
	}
}
