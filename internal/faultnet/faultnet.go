// Package faultnet wraps net.Listener and net.Conn with deterministic,
// scripted fault injection: delays, mid-frame truncation, single-byte
// corruption, connection resets, accept failures and a network
// partition toggle. It exists so the memhist chaos suite can prove that
// the probe transport never hangs, never panics and never delivers a
// corrupt histogram under any of these conditions.
//
// All randomness (which bit of a corrupted byte flips) comes from a
// seeded RNG, and all fault positions are scripted byte offsets, so a
// failing chaos run replays exactly.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"
)

// ErrInjected marks every error fabricated by this package, so tests
// can tell injected faults from real ones with errors.Is.
var ErrInjected = errors.New("faultnet: injected fault")

// ConnScript describes the faults for one connection. Offsets count
// cumulative bytes through the wrapped connection, 1-based; zero
// disables the fault.
type ConnScript struct {
	// ReadDelay sleeps before every Read (a slow peer).
	ReadDelay time.Duration
	// WriteDelay sleeps before every Write.
	WriteDelay time.Duration
	// CorruptReadAt flips one bit of the Nth byte read.
	CorruptReadAt int64
	// CorruptWriteAt flips one bit of the Nth byte written.
	CorruptWriteAt int64
	// TruncateWriteAt closes the connection after N bytes have been
	// written — the peer sees a mid-frame truncation.
	TruncateWriteAt int64
	// ResetReadAt fails reads once N bytes have been read, closing the
	// underlying connection — the peer sees a reset.
	ResetReadAt int64
}

// Options configures a wrapped listener.
type Options struct {
	// Seed drives the corruption RNG; connection i uses Seed+i.
	Seed int64
	// FailFirstAccepts makes the first N Accept calls return a
	// temporary error (after closing the accepted connection).
	FailFirstAccepts int
	// Script returns the fault script for the i-th accepted connection
	// (0-based); nil means that connection is clean. A nil Script
	// function leaves every connection clean.
	Script func(i int) *ConnScript
}

// Listener injects faults into accepted connections.
type Listener struct {
	net.Listener
	opts        Options
	partitioned atomic.Bool

	mu       sync.Mutex
	accepted int
	toFail   int
}

// Wrap decorates l with the scripted faults.
func Wrap(l net.Listener, opts Options) *Listener {
	return &Listener{Listener: l, opts: opts, toFail: opts.FailFirstAccepts}
}

// SetPartition toggles the partition: while on, every accepted
// connection is closed immediately, so peers see their connection die
// before any byte arrives. Heal with SetPartition(false).
func (l *Listener) SetPartition(on bool) { l.partitioned.Store(on) }

// Accepted returns how many connections have been accepted so far
// (including partitioned ones, excluding failed accepts).
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted
}

// acceptError is the temporary error returned by scripted accept
// failures; servers following the net/http convention retry it.
type acceptError struct{}

func (acceptError) Error() string   { return "faultnet: injected accept failure" }
func (acceptError) Timeout() bool   { return false }
func (acceptError) Temporary() bool { return true }
func (acceptError) Unwrap() error   { return ErrInjected }

// Accept applies accept failures and the partition, then wraps the
// connection with its script.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		fail := l.toFail > 0
		if fail {
			l.toFail--
		} else {
			l.accepted++
		}
		i := l.accepted - 1
		l.mu.Unlock()
		if fail {
			c.Close()
			return nil, acceptError{}
		}
		if l.partitioned.Load() {
			c.Close()
			continue
		}
		var script *ConnScript
		if l.opts.Script != nil {
			script = l.opts.Script(i)
		}
		if script == nil {
			return c, nil
		}
		return &conn{
			Conn:   c,
			script: script,
			rng:    rand.New(rand.NewSource(l.opts.Seed + int64(i))),
		}, nil
	}
}

// conn applies a ConnScript to one connection.
type conn struct {
	net.Conn
	script *ConnScript
	rng    *rand.Rand

	mu     sync.Mutex
	readN  int64
	writeN int64
}

func (c *conn) Read(p []byte) (int, error) {
	if c.script.ReadDelay > 0 {
		time.Sleep(c.script.ReadDelay)
	}
	c.mu.Lock()
	if c.script.ResetReadAt > 0 && c.readN >= c.script.ResetReadAt {
		c.mu.Unlock()
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection reset after %d bytes read", ErrInjected, c.script.ResetReadAt)
	}
	// Never read past the reset point in one call, so the reset fires
	// at its scripted offset.
	limit := len(p)
	if c.script.ResetReadAt > 0 && int64(limit) > c.script.ResetReadAt-c.readN {
		limit = int(c.script.ResetReadAt - c.readN)
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p[:limit])
	c.mu.Lock()
	if at := c.script.CorruptReadAt; at > 0 && c.readN < at && at <= c.readN+int64(n) {
		p[at-c.readN-1] ^= 1 << c.rng.Intn(8)
	}
	c.readN += int64(n)
	c.mu.Unlock()
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	if c.script.WriteDelay > 0 {
		time.Sleep(c.script.WriteDelay)
	}
	c.mu.Lock()
	if at := c.script.TruncateWriteAt; at > 0 {
		remaining := at - c.writeN
		if remaining <= 0 {
			c.mu.Unlock()
			c.Conn.Close()
			return 0, fmt.Errorf("%w: write truncated at %d bytes", ErrInjected, at)
		}
		if int64(len(p)) > remaining {
			part := append([]byte(nil), p[:remaining]...)
			c.corruptLocked(part)
			c.mu.Unlock()
			n, _ := c.Conn.Write(part)
			c.mu.Lock()
			c.writeN += int64(n)
			c.mu.Unlock()
			c.Conn.Close()
			return n, fmt.Errorf("%w: write truncated at %d bytes", ErrInjected, at)
		}
	}
	// Copy before corrupting: Write must never mutate the caller's buffer.
	out := p
	if at := c.script.CorruptWriteAt; at > 0 && c.writeN < at && at <= c.writeN+int64(len(p)) {
		out = append([]byte(nil), p...)
		c.corruptLocked(out)
	}
	c.mu.Unlock()
	n, err := c.Conn.Write(out)
	c.mu.Lock()
	c.writeN += int64(n)
	c.mu.Unlock()
	return n, err
}

// corruptLocked flips one bit of buf if the scripted write-corruption
// offset falls inside it. Caller holds c.mu.
func (c *conn) corruptLocked(buf []byte) {
	at := c.script.CorruptWriteAt
	if at > 0 && c.writeN < at && at <= c.writeN+int64(len(buf)) {
		buf[at-c.writeN-1] ^= 1 << c.rng.Intn(8)
	}
}
