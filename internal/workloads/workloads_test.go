package workloads

import (
	"strings"
	"testing"

	"numaperf/internal/counters"
	"numaperf/internal/exec"
	"numaperf/internal/topology"
)

func run(t *testing.T, w Workload, threads int) *exec.Result {
	t.Helper()
	e, err := exec.NewEngine(exec.Config{
		Machine: topology.TwoSocket(),
		Threads: threads,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(w.Body())
	if err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	return res
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Errorf("registry has %d workloads", len(names))
	}
	for _, n := range names {
		w, ok := ByName(n)
		if !ok || w == nil {
			t.Fatalf("ByName(%q) failed", n)
		}
		if w.Name() == "" {
			t.Errorf("%q has empty Name()", n)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("unknown workload resolved")
	}
	// Names must be sorted.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("names not sorted")
		}
	}
}

func TestCacheMissVariantsDiffer(t *testing.T) {
	// 512×512 floats: the column stride of 2 KiB aliases L1 sets,
	// overruns the L2 and stops the page-bounded prefetcher, like the
	// paper's 1024×1024 case but fast enough for a unit test.
	a := run(t, CacheMissA(512), 1)
	b := run(t, CacheMissB(512), 1)

	// Same instruction work (fill + traversal), very different caches.
	ia, ib := a.Raw.Get(counters.InstRetired), b.Raw.Get(counters.InstRetired)
	relInstr := float64(ib-ia) / float64(ia)
	if relInstr < -0.05 || relInstr > 0.05 {
		t.Errorf("instruction counts differ by %.1f%%, want ≈ 0", relInstr*100)
	}

	l1a, l1b := a.Raw.Get(counters.L1Miss), b.Raw.Get(counters.L1Miss)
	if float64(l1b) < 5*float64(l1a) {
		t.Errorf("L1 misses: A=%d B=%d, want B ≫ A (paper: +1000%%)", l1a, l1b)
	}
	pfa, pfb := a.Raw.Get(counters.L2PFRequests), b.Raw.Get(counters.L2PFRequests)
	if pfa == 0 {
		t.Fatal("variant A must prefetch")
	}
	if float64(pfb) > 0.5*float64(pfa) {
		t.Errorf("prefetch requests: A=%d B=%d, want B ≪ A (paper: −90%%)", pfa, pfb)
	}
	fba, fbb := a.Raw.Get(counters.FBFull), b.Raw.Get(counters.FBFull)
	if fbb < 100*max64(fba, 1) {
		t.Errorf("fill-buffer rejects: A=%d B=%d, want B ≫ A (paper: 26 → 3M)", fba, fbb)
	}
	// B costs far more cycles, and the difference is "fully explained
	// with execution stalls" (paper §V-A).
	if b.Cycles < a.Cycles*3/2 {
		t.Errorf("cycles: A=%d B=%d, want B ≫ A", a.Cycles, b.Cycles)
	}
	cycleDelta := float64(b.Cycles - a.Cycles)
	stallDelta := float64(b.Raw.Get(counters.StallsTotal) - a.Raw.Get(counters.StallsTotal))
	if stallDelta < 0.5*cycleDelta || stallDelta > 1.5*cycleDelta {
		t.Errorf("stall delta %.0f does not explain cycle delta %.0f", stallDelta, cycleDelta)
	}
	// Branch misses barely change (the paper's negative control).
	bma, bmb := float64(a.Raw.Get(counters.BranchMiss)), float64(b.Raw.Get(counters.BranchMiss))
	if bma == 0 || bmb/bma > 1.5 || bmb/bma < 0.6 {
		t.Errorf("branch misses: A=%g B=%g, want similar", bma, bmb)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestCacheMissNames(t *testing.T) {
	if !strings.Contains(CacheMissA(0).Name(), "rowmajor") || !strings.Contains(CacheMissB(0).Name(), "colmajor") {
		t.Error("variant names")
	}
	if !strings.Contains(CacheMissA(0).Name(), "1024") {
		t.Error("default size must be 1024")
	}
}

func TestParallelSortScalesLocksAndSpeculation(t *testing.T) {
	sortWL := ParallelSort{Elements: 1 << 14}
	r1 := run(t, sortWL, 1)
	r4 := run(t, sortWL, 4)
	r8 := run(t, sortWL, 8)

	locks1 := r1.Raw.Get(counters.CacheLockCycle)
	locks4 := r4.Raw.Get(counters.CacheLockCycle)
	locks8 := r8.Raw.Get(counters.CacheLockCycle)
	if !(locks1 < locks4 && locks4 < locks8) {
		t.Errorf("L1D lock cycles must rise with threads: %d, %d, %d", locks1, locks4, locks8)
	}

	spec1 := r1.Raw.Get(counters.SpecTakenJumps)
	spec4 := r4.Raw.Get(counters.SpecTakenJumps)
	spec8 := r8.Raw.Get(counters.SpecTakenJumps)
	if !(spec1 > spec4 && spec4 > spec8) {
		t.Errorf("speculative jumps must fall with threads: %d, %d, %d", spec1, spec4, spec8)
	}
}

func TestParallelSortDefaults(t *testing.T) {
	p := ParallelSort{}
	if p.elements() != 1<<20 || p.bias() != 200 {
		t.Error("defaults")
	}
	if !strings.Contains(p.Name(), "parallelsort") {
		t.Error("name")
	}
}

func TestSIFTIsNUMALocal(t *testing.T) {
	res := run(t, SIFT{Width: 256, Height: 256, Octaves: 2}, 2)
	local := res.Raw.Get(counters.LocalDRAM)
	remote := res.Raw.Get(counters.RemoteDRAM)
	if local == 0 {
		t.Fatal("SIFT must touch local DRAM")
	}
	if float64(remote) > 0.02*float64(local) {
		t.Errorf("NUMA-optimised SIFT: remote=%d local=%d, want remote ≈ 0", remote, local)
	}
	// The pyramid is cache friendly: most loads hit L1/L2.
	hits := res.Raw.Get(counters.L1Hit) + res.Raw.Get(counters.L2Hit)
	if float64(hits) < 0.8*float64(res.Raw.Get(counters.AllLoads)) {
		t.Error("SIFT loads must be cache friendly")
	}
}

func TestMLCLocalVsRemote(t *testing.T) {
	localWL := MLC{BufferBytes: 1 << 20, Chases: 20_000}
	remoteWL := MLC{BufferBytes: 1 << 20, Chases: 20_000, Remote: true}
	rl := run(t, localWL, 1)
	rr := run(t, remoteWL, 1)
	if rr.Raw.Get(counters.RemoteDRAM) == 0 {
		t.Fatal("remote mlc must load from remote DRAM")
	}
	if rl.Raw.Get(counters.RemoteDRAM) != 0 {
		t.Errorf("local mlc produced %d remote loads", rl.Raw.Get(counters.RemoteDRAM))
	}
	// Remote chase must be slower per hop.
	if rr.Cycles <= rl.Cycles {
		t.Errorf("remote chase %d cycles vs local %d, want slower", rr.Cycles, rl.Cycles)
	}
	if !strings.Contains(localWL.Name(), "local") || !strings.Contains(remoteWL.Name(), "remote") {
		t.Error("names")
	}
}

func TestPhasedAppFootprintShape(t *testing.T) {
	res := run(t, PhasedApp{RampChunks: 16, ChunkBytes: 64 << 10, ComputePasses: 3}, 2)
	fp := res.Footprint
	if len(fp) < 17 {
		t.Fatalf("footprint history too short: %d", len(fp))
	}
	// Footprint grows during ramp-up and stays flat afterwards.
	peak := fp[len(fp)-1].Bytes
	if peak < 16*64<<10 {
		t.Errorf("peak footprint %d below expected", peak)
	}
	// The last allocation must happen in the first part of the run.
	lastAlloc := fp[len(fp)-1].Cycle
	if lastAlloc > res.Cycles/2 {
		t.Errorf("ramp-up ends at cycle %d of %d; compute phase too short", lastAlloc, res.Cycles)
	}
}

func TestBSPAppStaircase(t *testing.T) {
	res := run(t, BSPApp{Supersteps: 3, StepBytes: 128 << 10, Passes: 2}, 2)
	fp := res.Footprint
	// 3 allocations → 4 footprint levels (incl. the engine's sync
	// page).
	var rises int
	for i := 1; i < len(fp); i++ {
		if fp[i].Bytes > fp[i-1].Bytes {
			rises++
		}
	}
	if rises < 3 {
		t.Errorf("staircase has %d rises, want ≥ 3", rises)
	}
}

func TestTriadScalesLinearly(t *testing.T) {
	small := run(t, Triad{Elements: 1 << 12}, 1)
	big := run(t, Triad{Elements: 1 << 14}, 1)
	ratio := float64(big.Raw.Get(counters.AllLoads)) / float64(small.Raw.Get(counters.AllLoads))
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4× elements produced %.2f× loads, want ≈ 4×", ratio)
	}
}

func TestPointerChaseLatencyDominated(t *testing.T) {
	res := run(t, PointerChase{Lines: 1 << 14, Hops: 20_000}, 1) // 1 MiB set
	// Dependent misses cannot overlap: cycles per hop must be large.
	cph := float64(res.Cycles) / 20_000
	if cph < 20 {
		t.Errorf("cycles per hop = %.1f, want latency dominated", cph)
	}
}

func TestLCGDeterminism(t *testing.T) {
	a, b := newLCG(42), newLCG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("LCG must be deterministic")
		}
	}
	// Matches the BSD constants from Listing 3.
	l := newLCG(1337)
	var seed, mulA, addC uint32 = 1337, 1103515245, 12345
	if l.next() != seed*mulA+addC {
		t.Error("LCG constants differ from Listing 3")
	}
	// chance(128) is roughly fair.
	c := newLCG(1)
	heads := 0
	for i := 0; i < 1000; i++ {
		if c.chance(128) {
			heads++
		}
	}
	if heads < 400 || heads > 600 {
		t.Errorf("chance(128) hit %d/1000", heads)
	}
}

func TestWorkloadsRunOnDL580(t *testing.T) {
	// Smoke test: every registered workload (downsized) must run on the
	// paper's machine without error.
	small := []Workload{
		CacheMissA(64), CacheMissB(64),
		ParallelSort{Elements: 4096},
		SIFT{Width: 64, Height: 64, Octaves: 2},
		MLC{BufferBytes: 1 << 18, Chases: 2000},
		MLC{BufferBytes: 1 << 18, Chases: 2000, Remote: true},
		PhasedApp{RampChunks: 4, ChunkBytes: 1 << 14, ComputePasses: 2},
		BSPApp{Supersteps: 2, StepBytes: 1 << 14, Passes: 2},
		Triad{Elements: 4096},
		PointerChase{Lines: 256, Hops: 1000},
	}
	e, err := exec.NewEngine(exec.Config{Machine: topology.DL580Gen9(), Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range small {
		if _, err := e.Run(w.Body()); err != nil {
			t.Errorf("%s on DL580: %v", w.Name(), err)
		}
	}
}

func TestRegistryCountUpdated(t *testing.T) {
	if len(Names()) != 13 {
		t.Errorf("registry has %d workloads, want 13", len(Names()))
	}
}

func TestGUPSIsTLBAndDRAMBound(t *testing.T) {
	gups := run(t, GUPS{TableBytes: 8 << 20, Updates: 30_000}, 2)
	tri := run(t, Triad{Elements: 1 << 13}, 2)
	// Per-load TLB walk rate must be far higher than for streaming.
	walkRate := func(r *exec.Result) float64 {
		return float64(r.Raw.Get(counters.DTLBLoadMissWalk)+r.Raw.Get(counters.DTLBLoadMissSTLBHit)) /
			float64(r.Raw.Get(counters.AllLoads))
	}
	if walkRate(gups) < 10*walkRate(tri) {
		t.Errorf("GUPS TLB pressure %.4f not ≫ triad %.4f", walkRate(gups), walkRate(tri))
	}
	// Prefetcher must be useless.
	if pf := gups.Raw.Get(counters.L2PFRequests); pf > gups.Raw.Get(counters.AllLoads)/100 {
		t.Errorf("GUPS prefetch requests = %d, want ≈ 0", pf)
	}
}

func TestFalseSharingPingPong(t *testing.T) {
	// Fine scheduling chunks: real false sharing interleaves at
	// instruction granularity, and the engine's default 4096-op quantum
	// would hide most of the ping-pong.
	runFine := func(w Workload) *exec.Result {
		e, err := exec.NewEngine(exec.Config{
			Machine: topology.TwoSocket(), Threads: 4, Seed: 3, Chunk: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(w.Body())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shared := runFine(FalseSharing{Updates: 20_000})
	padded := runFine(FalseSharing{Updates: 20_000, Padded: true})
	// The shared line causes memory-ordering machine clears; padding
	// removes them almost entirely.
	sc := shared.Raw.Get(counters.MachineClearsMO)
	pc := padded.Raw.Get(counters.MachineClearsMO)
	if sc < 10*(pc+1) {
		t.Errorf("machine clears: shared=%d padded=%d, want shared ≫ padded", sc, pc)
	}
	// And it costs cycles.
	if shared.Cycles <= padded.Cycles {
		t.Errorf("shared-line run (%d cyc) must be slower than padded (%d cyc)",
			shared.Cycles, padded.Cycles)
	}
}
