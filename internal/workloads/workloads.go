// Package workloads implements the programs the paper measures:
// the cache-miss micro-benchmarks of Listings 1 and 2, the parallel
// sort of Listing 3 (LCG-filled, GNU-parallel-mode style), a
// NUMA-optimised SIFT-like image pyramid, an Intel-mlc-like latency
// checker, and the phase-structured applications Phasenprüfer splits.
// Workload code emits operations through exec.Thread; it models the
// access patterns and branch behaviour of the originals rather than
// computing their actual results.
package workloads

import (
	"fmt"

	"numaperf/internal/exec"
)

// Workload is a runnable program for the engine.
type Workload interface {
	// Name identifies the workload (used by CLI tools and reports).
	Name() string
	// Body returns the SPMD thread body.
	Body() func(*exec.Thread)
}

// lcg is the BSD linear congruential engine from Listing 3, reused
// wherever the originals use pseudo-random data.
type lcg struct{ state uint32 }

func newLCG(seed uint32) *lcg { return &lcg{state: seed} }

func (l *lcg) next() uint32 {
	l.state = l.state*1103515245 + 12345
	return l.state
}

// bits returns the top 16 bits, the usable part of an LCG.
func (l *lcg) bits() uint32 { return l.next() >> 16 }

// chance returns true with probability p/256.
func (l *lcg) chance(p uint32) bool { return l.bits()%256 < p }

// Branch site IDs. Keeping them distinct per logical branch mirrors
// PC-indexed prediction; unrelated workloads may share IDs without harm
// because the engine resets predictor state between runs.
const (
	siteAltSum     = 1 // the y%2 / x%2 alternating-sum branch
	siteLoopBound  = 2 // inner loop back-edge
	siteSortLocal  = 3 // comparison during thread-local sort passes
	siteSortMerge  = 4 // comparison during cross-thread merges
	siteSiftThresh = 5 // DoG extremum threshold test
	sitePhaseIO    = 6 // ramp-up I/O readiness poll
)

func label(name string, kv ...any) string {
	s := name
	for i := 0; i+1 < len(kv); i += 2 {
		s += fmt.Sprintf(" %v=%v", kv[i], kv[i+1])
	}
	return s
}
