package workloads

import "numaperf/internal/exec"

// CacheMiss reproduces the cache-miss micro-benchmark pair of the
// paper's Listings 1 and 2: a Size×Size float32 array is filled and
// then read either row-major (variant A — "hitting cache lines fairly
// often") or column-major (variant B — a 4 KiB stride for Size=1024
// that defeats the L1 and the page-bounded stream prefetcher). The
// alternating-sum branch (y%2, respectively x%2) is included because
// the paper reports its near-unchanged miss behaviour as the negative
// control of the comparison.
type CacheMiss struct {
	// Size is the square array dimension (the paper uses 1024).
	Size int
	// ColumnMajor selects variant B (Listing 2) when true.
	ColumnMajor bool
}

// Name identifies the variant.
func (c CacheMiss) Name() string {
	v := "A-rowmajor"
	if c.ColumnMajor {
		v = "B-colmajor"
	}
	return label("cachemiss-"+v, "size", c.size())
}

func (c CacheMiss) size() int {
	if c.Size <= 0 {
		return 1024
	}
	return c.Size
}

// Body emits the fill pass and the traversal.
func (c CacheMiss) Body() func(*exec.Thread) {
	n := uint64(c.size())
	return func(t *exec.Thread) {
		if t.ID() != 0 {
			return // the listings are single-threaded
		}
		buf := t.Alloc(n * n * 4)
		// "fill array with random values": one store plus the LCG
		// multiply-add per element, row-major.
		t.Begin("fill")
		for y := uint64(0); y < n; y++ {
			for x := uint64(0); x < n; x++ {
				t.Store(buf.Addr((y*n + x) * 4))
				t.Instr(2)
			}
		}
		t.End()
		// Traversal with the alternating-sum branch.
		t.Begin("traverse")
		for outer := uint64(0); outer < n; outer++ {
			alt := outer%2 == 0
			for inner := uint64(0); inner < n; inner++ {
				var off uint64
				if c.ColumnMajor {
					off = (inner*n + outer) * 4 // array[y][x], y = inner
				} else {
					off = (outer*n + inner) * 4 // array[y][x], x = inner
				}
				t.Load(buf.Addr(off))
				t.Branch(siteAltSum, alt)
				t.Instr(2) // add/sub + index arithmetic; the counted
				// inner-loop back-edge is perfectly predicted and
				// pipelined away, so it is folded into Instr.
			}
		}
		t.End()
	}
}

// CacheMissA returns Listing 1 (row-major, cache friendly).
func CacheMissA(size int) CacheMiss { return CacheMiss{Size: size} }

// CacheMissB returns Listing 2 (column-major, cache hostile).
func CacheMissB(size int) CacheMiss { return CacheMiss{Size: size, ColumnMajor: true} }
