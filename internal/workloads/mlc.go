package workloads

import "numaperf/internal/exec"

// MLC models the Intel Memory Latency Checker used in the paper both
// to verify Memhist's peaks and to induce the remote accesses of
// Fig. 10b. Its idle-latency mode is a dependent pointer chase over a
// page-randomised permutation (so neither the prefetcher nor
// memory-level parallelism can hide latency); Remote forces the chased
// buffer onto another NUMA node.
type MLC struct {
	// BufferBytes is the chased working set; default 64 MiB (DRAM
	// resident). Smaller values measure cache levels.
	BufferBytes uint64
	// Remote homes the buffer on a node other than the chasing
	// thread's (mlc --latency_matrix remote case).
	Remote bool
	// RemoteNode selects the target node when Remote is set; values
	// ≤ 0 pick the next node after the chasing thread's.
	RemoteNode int
	// Chases is the number of dependent loads; default 200k.
	Chases int
}

// Name identifies the configuration.
func (m MLC) Name() string {
	loc := "local"
	if m.Remote {
		loc = "remote"
	}
	return label("mlc-"+loc, "buf", m.bufferBytes())
}

func (m MLC) bufferBytes() uint64 {
	if m.BufferBytes == 0 {
		return 64 << 20
	}
	return m.BufferBytes
}

func (m MLC) chases() int {
	if m.Chases <= 0 {
		return 200_000
	}
	return m.Chases
}

// Body allocates the buffer, homes it, and chases line-granular
// pointers through a Sattolo-shuffled permutation cycle.
func (m MLC) Body() func(*exec.Thread) {
	size := m.bufferBytes()
	chases := m.chases()
	remote := m.Remote
	remoteNode := m.RemoteNode
	return func(t *exec.Thread) {
		if t.ID() != 0 {
			return // mlc idle latency is single threaded
		}
		buf := t.Alloc(size)
		// First-touch every page locally, then optionally migrate the
		// buffer to a remote node — the way mlc binds memory with
		// numactl.
		t.Begin("touch")
		for off := uint64(0); off < size; off += 4096 {
			t.Store(buf.Addr(off))
		}
		t.End()
		if remote {
			target := remoteNode
			if target <= 0 || target >= t.NodeCount() {
				target = (t.Node() + 1) % t.NodeCount()
			}
			t.MovePages(buf, target)
		}

		// Build a single-cycle permutation over cache lines (Sattolo's
		// algorithm) so the chase visits every line exactly once per
		// lap in an unpredictable order.
		lines := size / 64
		perm := make([]uint64, lines)
		for i := range perm {
			perm[i] = uint64(i)
		}
		rng := newLCG(12345)
		for i := lines - 1; i > 0; i-- {
			j := uint64(rng.next()) % i
			perm[i], perm[j] = perm[j], perm[i]
		}
		next := make([]uint64, lines)
		for i := uint64(0); i < lines-1; i++ {
			next[perm[i]] = perm[i+1]
		}
		next[perm[lines-1]] = perm[0]

		cur := perm[0]
		t.Begin("chase")
		for i := 0; i < chases; i++ {
			t.LoadDep(buf.Addr(cur * 64))
			cur = next[cur]
			t.Instr(1) // pointer dereference bookkeeping
		}
		t.End()
	}
}
