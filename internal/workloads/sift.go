package workloads

import "numaperf/internal/exec"

// SIFT models the NUMA-optimised scale-invariant feature transform of
// Plauth et al. (IPDPSW 2016), the workload behind the paper's
// Fig. 10a: an image pyramid where every octave applies separable
// Gaussian blur passes and difference-of-Gaussians subtractions. The
// NUMA optimisation is that each thread's image stripe is first-touched
// (and therefore homed) on the thread's own node, so the workload
// "acts almost entirely on local memory" — the histogram shows L2, L3
// and local-DRAM peaks and essentially no remote component.
type SIFT struct {
	// Width and Height are the base image dimensions in pixels
	// (4 bytes per pixel); defaults 1024×1024.
	Width, Height int
	// Octaves is the pyramid depth (halving each level); default 3.
	Octaves int
	// BlurPasses per octave; default 2 separable passes.
	BlurPasses int
}

// Name identifies the workload.
func (s SIFT) Name() string {
	w, h := s.dims()
	return label("sift", "w", w, "h", h, "octaves", s.octaves())
}

func (s SIFT) dims() (int, int) {
	w, h := s.Width, s.Height
	if w <= 0 {
		w = 1024
	}
	if h <= 0 {
		h = 1024
	}
	return w, h
}

func (s SIFT) octaves() int {
	if s.Octaves <= 0 {
		return 3
	}
	return s.Octaves
}

func (s SIFT) blurPasses() int {
	if s.BlurPasses <= 0 {
		return 2
	}
	return s.BlurPasses
}

// Body builds the stripe-local pyramid and runs blur + DoG per octave.
func (s SIFT) Body() func(*exec.Thread) {
	w0, h0 := s.dims()
	octaves := s.octaves()
	passes := s.blurPasses()
	return func(t *exec.Thread) {
		// Per-thread stripe of the image, allocated and first-touched
		// locally (the NUMA optimisation).
		rows := uint64(h0 / t.Threads())
		if rows == 0 {
			rows = 1
		}
		width := uint64(w0)
		stripe := t.Alloc(rows * width * 4)
		blurred := t.Alloc(rows * width * 4)
		dog := t.Alloc(rows * width * 4)
		for off := uint64(0); off < stripe.Size; off += 4 {
			t.Store(stripe.Addr(off)) // load image data (first touch)
			t.Instr(1)
		}
		t.Barrier()

		rng := newLCG(uint32(31 + t.ID()))
		rw, rh := width, rows
		for oct := 0; oct < octaves; oct++ {
			// Separable Gaussian blur: horizontal then vertical taps.
			t.Begin("blur")
			for p := 0; p < passes; p++ {
				for y := uint64(0); y < rh; y++ {
					for x := uint64(0); x < rw; x++ {
						idx := (y*rw + x) * 4
						t.Load(stripe.Addr(idx))
						if x+1 < rw {
							t.Load(stripe.Addr(idx + 4)) // neighbour tap
						}
						if y+1 < rh {
							t.Load(stripe.Addr(idx + rw*4)) // vertical tap
						}
						t.Store(blurred.Addr(idx))
						t.Instr(5) // multiply-accumulate kernel taps
					}
				}
			}
			t.End()
			// Difference of Gaussians + extremum threshold test.
			t.Begin("dog")
			for i := uint64(0); i < rh*rw; i++ {
				t.Load(stripe.Addr(i * 4))
				t.Load(blurred.Addr(i * 4))
				t.Store(dog.Addr(i * 4))
				t.Branch(siteSiftThresh, rng.chance(32)) // rare extrema
				t.Instr(2)
			}
			t.End()
			// Downsample for the next octave (reads strided, writes
			// compact).
			rw /= 2
			rh /= 2
			if rw == 0 || rh == 0 {
				break
			}
			t.Begin("downsample")
			for y := uint64(0); y < rh; y++ {
				for x := uint64(0); x < rw; x++ {
					t.Load(blurred.Addr(((2*y)*(rw*2) + 2*x) * 4))
					t.Store(stripe.Addr((y*rw + x) * 4))
					t.Instr(2)
				}
			}
			t.End()
			t.Barrier()
		}
	}
}
