package workloads

import (
	"sort"
	"sync"
)

// registryMu guards factories: the remote probe serves concurrent
// connections that all resolve workloads by name, and tests register
// synthetic workloads.
var registryMu sync.RWMutex

// factories maps CLI names to default-parameterised workloads.
var factories = map[string]func() Workload{
	"cachemiss-a":       func() Workload { return CacheMissA(0) },
	"cachemiss-b":       func() Workload { return CacheMissB(0) },
	"parallelsort":      func() Workload { return ParallelSort{} },
	"sift":              func() Workload { return SIFT{} },
	"mlc-local":         func() Workload { return MLC{} },
	"mlc-remote":        func() Workload { return MLC{Remote: true} },
	"phasedapp":         func() Workload { return PhasedApp{} },
	"bspapp":            func() Workload { return BSPApp{} },
	"triad":             func() Workload { return Triad{} },
	"gups":              func() Workload { return GUPS{} },
	"falseshare":        func() Workload { return FalseSharing{} },
	"falseshare-padded": func() Workload { return FalseSharing{Padded: true} },
	"pointer-chase":     func() Workload { return PointerChase{} },
}

// Register adds (or replaces) a named workload factory, making it
// reachable by ByName and therefore by the remote probe.
func Register(name string, f func() Workload) {
	registryMu.Lock()
	defer registryMu.Unlock()
	factories[name] = f
}

// ByName returns a default-parameterised workload for CLI use.
func ByName(name string) (Workload, bool) {
	registryMu.RLock()
	f, ok := factories[name]
	registryMu.RUnlock()
	if !ok {
		return nil, false
	}
	return f(), true
}

// Names lists the registered workload names alphabetically.
func Names() []string {
	registryMu.RLock()
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	registryMu.RUnlock()
	sort.Strings(out)
	return out
}
