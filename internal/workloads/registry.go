package workloads

import "sort"

// factories maps CLI names to default-parameterised workloads.
var factories = map[string]func() Workload{
	"cachemiss-a":       func() Workload { return CacheMissA(0) },
	"cachemiss-b":       func() Workload { return CacheMissB(0) },
	"parallelsort":      func() Workload { return ParallelSort{} },
	"sift":              func() Workload { return SIFT{} },
	"mlc-local":         func() Workload { return MLC{} },
	"mlc-remote":        func() Workload { return MLC{Remote: true} },
	"phasedapp":         func() Workload { return PhasedApp{} },
	"bspapp":            func() Workload { return BSPApp{} },
	"triad":             func() Workload { return Triad{} },
	"gups":              func() Workload { return GUPS{} },
	"falseshare":        func() Workload { return FalseSharing{} },
	"falseshare-padded": func() Workload { return FalseSharing{Padded: true} },
	"pointer-chase":     func() Workload { return PointerChase{} },
}

// ByName returns a default-parameterised workload for CLI use.
func ByName(name string) (Workload, bool) {
	f, ok := factories[name]
	if !ok {
		return nil, false
	}
	return f(), true
}

// Names lists the registered workload names alphabetically.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
