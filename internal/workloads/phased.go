package workloads

import "numaperf/internal/exec"

// PhasedApp is the phase-structured application family Phasenprüfer
// splits (the paper showcases the Google Chrome start-up): a ramp-up
// phase that accumulates memory at the maximum possible rate (linearly
// increasing footprint, dominated by I/O-ish activity and memory
// redistribution) followed by a computation phase with a flat
// footprint that processes the loaded data.
type PhasedApp struct {
	// RampChunks is the number of allocations in the ramp-up phase;
	// default 32.
	RampChunks int
	// ChunkBytes is the size of each ramp-up allocation; default
	// 256 KiB.
	ChunkBytes uint64
	// ComputePasses is how often the computation phase sweeps the
	// accumulated data; default 6.
	ComputePasses int
}

// Name identifies the workload.
func (p PhasedApp) Name() string {
	return label("phasedapp", "chunks", p.rampChunks(), "passes", p.computePasses())
}

func (p PhasedApp) rampChunks() int {
	if p.RampChunks <= 0 {
		return 32
	}
	return p.RampChunks
}

func (p PhasedApp) chunkBytes() uint64 {
	if p.ChunkBytes == 0 {
		return 256 << 10
	}
	return p.ChunkBytes
}

func (p PhasedApp) computePasses() int {
	if p.ComputePasses <= 0 {
		return 6
	}
	return p.ComputePasses
}

// Body emits the ramp-up then the computation phase. Worker threads
// beyond thread 0 join for the computation phase, matching the typical
// start-up of end-user applications (single-threaded loading, parallel
// processing).
func (p PhasedApp) Body() func(*exec.Thread) {
	chunks := p.rampChunks()
	chunkBytes := p.chunkBytes()
	passes := p.computePasses()
	var bufs []exec.Buffer
	return func(t *exec.Thread) {
		if t.ID() == 0 {
			t.Begin("ramp-up")
			bufs = bufs[:0]
			for c := 0; c < chunks; c++ {
				buf := t.Alloc(chunkBytes)
				bufs = append(bufs, buf)
				// "Loading": touch the pages, poll I/O readiness, burn
				// syscall-ish instructions.
				for off := uint64(0); off < buf.Size; off += 64 {
					t.Store(buf.Addr(off))
				}
				t.Branch(sitePhaseIO, c%4 != 0)
				t.Instr(uint64(chunkBytes / 16)) // parse/copy overhead
			}
			t.End()
		}
		t.Barrier()
		// Computation phase: all threads sweep the loaded chunks.
		t.Begin("compute")
		for pass := 0; pass < passes; pass++ {
			for ci, buf := range bufs {
				if ci%t.Threads() != t.ID() {
					continue
				}
				for off := uint64(0); off < buf.Size; off += 4 {
					t.Load(buf.Addr(off))
					t.Instr(2)
				}
			}
			t.Barrier()
		}
		t.End()
	}
}

// BSPApp is the multi-superstep extension case for k-phase detection
// (paper §IV-C: "in the example of BSP-like programs, where multiple
// supersteps could be analyzed, recognizing individual steps may be
// desirable"). Each superstep allocates a new working set (footprint
// staircase) and then computes on it (flat footprint), producing 2·K
// phases.
type BSPApp struct {
	// Supersteps is the number of allocate+compute rounds; default 3.
	Supersteps int
	// StepBytes is the allocation per superstep; default 512 KiB.
	StepBytes uint64
	// Passes is the compute sweeps per superstep; default 4.
	Passes int
}

// Name identifies the workload.
func (b BSPApp) Name() string { return label("bspapp", "steps", b.supersteps()) }

func (b BSPApp) supersteps() int {
	if b.Supersteps <= 0 {
		return 3
	}
	return b.Supersteps
}

func (b BSPApp) stepBytes() uint64 {
	if b.StepBytes == 0 {
		return 512 << 10
	}
	return b.StepBytes
}

func (b BSPApp) passes() int {
	if b.Passes <= 0 {
		return 4
	}
	return b.Passes
}

// Body emits the superstep staircase.
func (b BSPApp) Body() func(*exec.Thread) {
	steps := b.supersteps()
	stepBytes := b.stepBytes()
	passes := b.passes()
	var cur exec.Buffer
	return func(t *exec.Thread) {
		for s := 0; s < steps; s++ {
			if t.ID() == 0 {
				cur = t.Alloc(stepBytes)
				for off := uint64(0); off < cur.Size; off += 64 {
					t.Store(cur.Addr(off))
				}
			}
			t.Barrier()
			share := cur.Size / uint64(t.Threads())
			lo := uint64(t.ID()) * share
			for pass := 0; pass < passes; pass++ {
				for off := lo; off < lo+share; off += 4 {
					t.Load(cur.Addr(off))
					t.Instr(3)
				}
			}
			t.Barrier()
		}
	}
}
