package workloads

import "numaperf/internal/exec"

// GUPS models the HPCC RandomAccess kernel: read-modify-write updates
// to pseudo-random locations of a large table. Unlike the sequential
// kernels it defeats both the prefetcher and spatial locality, so its
// counter signature is TLB- and DRAM-dominated — a useful contrast
// workload for EvSel comparisons and Memhist histograms.
type GUPS struct {
	// TableBytes is the updated table size; default 16 MiB.
	TableBytes uint64
	// Updates is the number of random updates; default 100k.
	Updates int
}

// Name identifies the workload.
func (g GUPS) Name() string { return label("gups", "table", g.tableBytes()) }

func (g GUPS) tableBytes() uint64 {
	if g.TableBytes == 0 {
		return 16 << 20
	}
	return g.TableBytes
}

func (g GUPS) updates() int {
	if g.Updates <= 0 {
		return 100_000
	}
	return g.Updates
}

// Body emits the random update stream, split across threads.
func (g GUPS) Body() func(*exec.Thread) {
	size := g.tableBytes()
	updates := g.updates()
	var table exec.Buffer
	return func(t *exec.Thread) {
		if t.ID() == 0 {
			table = t.Alloc(size)
		}
		t.Barrier()
		rng := newLCG(uint32(101 + t.ID()))
		share := updates / t.Threads()
		words := size / 8
		for i := 0; i < share; i++ {
			// 32-bit LCG composed twice for table-scale offsets.
			idx := (uint64(rng.next())<<16 ^ uint64(rng.next())) % words
			addr := table.Addr(idx * 8)
			t.Load(addr)
			t.Instr(2) // xor + address generation
			t.Store(addr)
		}
	}
}

// FalseSharing models the classic pathology: every thread updates its
// own counter, but all counters live on one cache line. The line
// ping-pongs between cores, producing cache-to-cache transfers, L1D
// lock cycles and memory-ordering machine clears. Padded disables the
// pathology (one line per thread) for an A/B comparison.
type FalseSharing struct {
	// Updates per thread; default 50k.
	Updates int
	// Padded gives each thread its own cache line (the fix).
	Padded bool
}

// Name identifies the variant.
func (f FalseSharing) Name() string {
	v := "shared-line"
	if f.Padded {
		v = "padded"
	}
	return label("falseshare-"+v, "updates", f.updates())
}

func (f FalseSharing) updates() int {
	if f.Updates <= 0 {
		return 50_000
	}
	return f.Updates
}

// Body emits the per-thread counter updates.
func (f FalseSharing) Body() func(*exec.Thread) {
	updates := f.updates()
	padded := f.Padded
	var buf exec.Buffer
	return func(t *exec.Thread) {
		if t.ID() == 0 {
			buf = t.Alloc(uint64(t.Threads()) * 64)
		}
		t.Barrier()
		stride := uint64(8) // all counters in one line
		if padded {
			stride = 64 // one line per thread
		}
		addr := buf.Addr(uint64(t.ID()) * stride)
		for i := 0; i < updates; i++ {
			t.Atomic(addr)
			t.Instr(1)
		}
	}
}
