package workloads

import "numaperf/internal/exec"

// Triad is a STREAM-style bandwidth kernel (a[i] = b[i] + s·c[i]) used
// as a size-parameterised workload family for the two-step strategy's
// code-to-indicator extrapolation: its counters scale linearly with
// Elements, which a regression over small sizes must discover.
type Triad struct {
	// Elements per array; default 256 Ki (3 MiB working set).
	Elements int
	// Passes over the arrays; default 2.
	Passes int
}

// Name identifies the workload.
func (tr Triad) Name() string { return label("triad", "n", tr.elements()) }

func (tr Triad) elements() int {
	if tr.Elements <= 0 {
		return 256 << 10
	}
	return tr.Elements
}

func (tr Triad) passes() int {
	if tr.Passes <= 0 {
		return 2
	}
	return tr.Passes
}

// Body emits the triad sweeps, parallelised over threads.
func (tr Triad) Body() func(*exec.Thread) {
	n := uint64(tr.elements())
	passes := tr.passes()
	return func(t *exec.Thread) {
		share := n / uint64(t.Threads())
		if share == 0 {
			share = 1
		}
		a := t.Alloc(share * 4)
		b := t.Alloc(share * 4)
		c := t.Alloc(share * 4)
		for p := 0; p < passes; p++ {
			for i := uint64(0); i < share; i++ {
				t.Load(b.Addr(i * 4))
				t.Load(c.Addr(i * 4))
				t.Store(a.Addr(i * 4))
				t.Instr(2) // multiply + add
			}
		}
	}
}

// PointerChase is a size-parameterised dependent-load family whose
// counters scale super-linearly in working-set size once the set
// outgrows each cache level; it gives the two-step strategy a family
// whose indicator-to-cost relation is dominated by memory latency.
type PointerChase struct {
	// Lines is the number of chased cache lines; default 4096 (256 KiB).
	Lines uint64
	// Hops is the number of dependent loads; default 4·Lines.
	Hops int
}

// Name identifies the workload.
func (pc PointerChase) Name() string { return label("chase", "lines", pc.lines()) }

func (pc PointerChase) lines() uint64 {
	if pc.Lines == 0 {
		return 4096
	}
	return pc.Lines
}

func (pc PointerChase) hops() int {
	if pc.Hops <= 0 {
		return int(4 * pc.lines())
	}
	return pc.Hops
}

// Body builds the permutation and chases it.
func (pc PointerChase) Body() func(*exec.Thread) {
	lines := pc.lines()
	hops := pc.hops()
	return func(t *exec.Thread) {
		if t.ID() != 0 {
			return
		}
		buf := t.Alloc(lines * 64)
		perm := make([]uint64, lines)
		for i := range perm {
			perm[i] = uint64(i)
		}
		rng := newLCG(99)
		for i := lines - 1; i > 0; i-- {
			j := uint64(rng.next()) % i
			perm[i], perm[j] = perm[j], perm[i]
		}
		next := make([]uint64, lines)
		for i := uint64(0); i < lines-1; i++ {
			next[perm[i]] = perm[i+1]
		}
		next[perm[lines-1]] = perm[0]
		cur := perm[0]
		for i := 0; i < hops; i++ {
			t.LoadDep(buf.Addr(cur * 64))
			cur = next[cur]
			t.Instr(1)
		}
	}
}
