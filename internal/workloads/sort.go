package workloads

import (
	"math"

	"numaperf/internal/exec"
)

// ParallelSort models Listing 3: a 4 MiB vector of uint filled with a
// BSD linear congruential engine and sorted with the GNU libstdc++
// parallel mode. The model executes the memory and branch pattern of a
// parallel bottom-up merge sort: every thread sorts its segment
// locally, then adjacent segments are merged across threads in log₂(T)
// rounds separated by barriers.
//
// Two effects the paper's Fig. 9 correlates with the thread count come
// out of this structure naturally:
//
//   - L1D cache-lock cycles rise with T: each barrier bounces a
//     contended synchronisation line (one locked update per waiter) and
//     cross-thread merges walk pages first touched by other threads,
//     which locks the L1D during uncore-managed TLB walks.
//   - Retired speculative taken jumps fall with T: local sort passes
//     compare partially ordered data (biased, predictable branches,
//     deep speculation) while cross-thread merge comparisons are
//     fifty-fifty; more threads shift passes from the former to the
//     latter, so the CPU speculates fewer jumps.
type ParallelSort struct {
	// Elements is the vector length (the paper uses 1 Mi uints = 4 MiB).
	Elements int
	// LocalBias is the predictability (out of 256) of comparison
	// branches during thread-local passes; default 200 (~78%).
	LocalBias uint32
}

// Name identifies the workload.
func (p ParallelSort) Name() string { return label("parallelsort", "n", p.elements()) }

func (p ParallelSort) elements() int {
	if p.Elements <= 0 {
		return 1 << 20
	}
	return p.Elements
}

func (p ParallelSort) bias() uint32 {
	if p.LocalBias == 0 {
		return 200
	}
	return p.LocalBias
}

// Body emits the fill, the local sort passes and the cross-thread merge
// rounds. The returned body shares the data buffers between threads of
// one run through its closure; the barrier after the fill publishes
// them (the engine's barrier is a cross-goroutine synchronisation
// point). The body supports repeated sequential runs but must not be
// shared between concurrently running engines.
func (p ParallelSort) Body() func(*exec.Thread) {
	n := uint64(p.elements())
	bias := p.bias()
	var data, temp exec.Buffer // published by thread 0 at the first barrier
	return func(t *exec.Thread) {
		nt := uint64(t.Threads())
		if t.ID() == 0 {
			// data.reserve + LCG fill happens on the main thread, as in
			// Listing 3 (emplace_back of LCG values).
			t.Begin("fill")
			data = t.Alloc(n * 4)
			temp = t.Alloc(n * 4)
			for i := uint64(0); i < n; i++ {
				t.Store(data.Addr(i * 4))
				t.Instr(2) // lcg = lcg*a + c
			}
			t.End()
		}
		t.Barrier()

		rng := newLCG(uint32(7 + t.ID()))
		seg := n / nt
		if seg == 0 {
			seg = 1
		}
		lo := uint64(t.ID()) * seg
		hi := lo + seg
		if t.ID() == t.Threads()-1 {
			hi = n
		}
		if lo > n {
			lo, hi = n, n
		}

		// Thread-local sort over [lo, hi): exactly seg·log₂(seg)
		// comparisons, swept cyclically over the segment — the work of
		// a comparison sort, continuous in the segment size so counter
		// trends over the thread count stay smooth.
		t.Begin("local-sort")
		localComps := uint64(float64(hi-lo) * math.Log2(float64(hi-lo)+1))
		for c, i := uint64(0), lo; c < localComps; c++ {
			t.Load(data.Addr(i * 4))
			t.Branch(siteSortLocal, rng.chance(bias))
			t.Store(temp.Addr(i * 4))
			t.Instr(3) // compare, index bookkeeping
			i++
			if i >= hi {
				i = lo
			}
		}
		t.End()
		t.Barrier()

		// Cross-thread merges: n·log₂(T) comparisons in total, spread
		// over ceil(log₂ T) barrier rounds. In round r every 2^r-th
		// thread merges its group's halves, touching data first written
		// by other threads.
		rounds := 0
		for 1<<rounds < int(nt) {
			rounds++
		}
		t.Begin("merge")
		for round := 1; round <= rounds; round++ {
			group := uint64(1) << round
			if uint64(t.ID())%group == 0 {
				mlo := uint64(t.ID()) * seg
				mhi := mlo + group*seg
				if mhi > n {
					mhi = n
				}
				// This leader's share of the round's comparisons.
				share := uint64(float64(mhi-mlo) * math.Log2(float64(nt)) / float64(rounds))
				for c, i := uint64(0), mlo; c < share; c++ {
					t.Load(data.Addr(i * 4))
					t.Branch(siteSortMerge, rng.chance(128))
					t.Store(temp.Addr(i * 4))
					t.Instr(3)
					i++
					if i >= mhi {
						i = mlo
					}
				}
			}
			// Barrier contention: every waiter bounces the sync line
			// once per participant.
			for w := 0; w < t.Threads(); w++ {
				t.Atomic(data.Addr(0))
			}
			t.Barrier()
		}
		t.End()
	}
}
