// Package models implements executable versions of the classic
// monolithic (single-step, code-to-cost) models of parallel
// computation surveyed in the paper's Section II: PRAM (shared-bus
// era), BSP and LogP (cluster era), Memory LogP (hierarchical-memory
// era) and κNUMA (NUMA era). They serve as the comparison baselines
// for the two-step strategy: each predicts execution cycles directly
// from a workload characterisation and machine parameters, without
// access to measured hardware indicators.
package models

import (
	"math"

	"numaperf/internal/counters"
	"numaperf/internal/exec"
	"numaperf/internal/topology"
)

// Characterization is the abstract workload description monolithic
// models consume. It is what a programmer could state about a program
// without running it (operation counts and structure) — unlike
// hardware-counter indicators, it carries no information about actual
// cache behaviour.
type Characterization struct {
	// Ops is the number of unit-cost operations (instructions).
	Ops float64
	// MemAccesses is the number of memory operations.
	MemAccesses float64
	// LocalFraction is the share of memory accesses to node-local
	// memory (1.0 for UMA or perfectly placed data).
	LocalFraction float64
	// Messages counts cross-node data transfers (cache lines).
	Messages float64
	// Supersteps is the number of bulk-synchronous rounds (barrier
	// intervals).
	Supersteps float64
	// Threads is the degree of parallelism.
	Threads int
	// Imbalance is max-thread work divided by mean work (≥ 1).
	Imbalance float64
}

// Characterize derives the abstract description from a simulated run.
// Only structural counters are used (instruction counts, access
// counts, barrier counts) — nothing that would reveal the memory
// hierarchy behaviour, keeping the baselines honest.
func Characterize(res *exec.Result) Characterization {
	c := Characterization{
		Ops:           float64(res.Raw.Get(counters.InstRetired)),
		MemAccesses:   float64(res.Raw.Get(counters.AllLoads) + res.Raw.Get(counters.AllStores)),
		LocalFraction: 1,
		Threads:       res.Threads,
		Imbalance:     1,
	}
	local := float64(res.Raw.Get(counters.LocalDRAM))
	remote := float64(res.Raw.Get(counters.RemoteDRAM))
	if local+remote > 0 {
		c.LocalFraction = local / (local + remote)
	}
	// Each QPI data transfer moves one line in two flit bursts.
	c.Messages = float64(res.Raw.Get(counters.UncQPITx)) / 2
	if res.Threads > 0 {
		c.Supersteps = float64(res.Raw.Get(counters.LockLoads)) / float64(res.Threads)
	}
	if c.Supersteps < 1 {
		c.Supersteps = 1
	}
	// Imbalance from per-core instruction spread.
	var maxI, sumI float64
	var active int
	for _, pc := range res.PerCore {
		v := float64(pc.Get(counters.InstRetired))
		if v > 0 {
			active++
			sumI += v
			if v > maxI {
				maxI = v
			}
		}
	}
	if active > 0 && sumI > 0 {
		c.Imbalance = maxI * float64(active) / sumI
	}
	return c
}

// Model predicts execution cycles from the characterisation and the
// machine description.
type Model interface {
	Name() string
	PredictCycles(c Characterization, m *topology.Machine) float64
}

// PRAM is the shared-bus era baseline: P processors execute unit-cost
// operations on common memory in lockstep; memory is free.
type PRAM struct{}

// Name identifies the model.
func (PRAM) Name() string { return "PRAM" }

// PredictCycles returns ops divided by the processor count (CPI 0.5 to
// match the machine's superscalar width).
func (PRAM) PredictCycles(c Characterization, m *topology.Machine) float64 {
	p := float64(max(c.Threads, 1))
	return (c.Ops / 2) / p * c.Imbalance
}

// BSP is Valiant's bulk synchronous parallel model: supersteps of
// computation, h-relation communication priced at g per word, and a
// barrier cost l.
type BSP struct {
	// G is the per-message gap (cycles per transferred line); default
	// from DRAM latency.
	G float64
	// L is the barrier latency in cycles; default 2000.
	L float64
}

// Name identifies the model.
func (BSP) Name() string { return "BSP" }

// PredictCycles sums per-superstep costs: w_max + g·h + l.
func (b BSP) PredictCycles(c Characterization, m *topology.Machine) float64 {
	g := b.G
	if g == 0 {
		g = float64(m.MemLatency)
	}
	l := b.L
	if l == 0 {
		l = 2000
	}
	p := float64(max(c.Threads, 1))
	wMax := (c.Ops / 2) / p * c.Imbalance
	h := c.Messages / math.Max(c.Supersteps, 1) / p
	return wMax + c.Supersteps*(g*h+l)
}

// LogP is the asynchronous cluster model with latency L, overhead o,
// gap g and processor count P.
type LogP struct {
	// L is the message latency in cycles; defaults to the remote DRAM
	// latency.
	L float64
	// O is the per-message processor overhead; default 40 cycles.
	O float64
}

// Name identifies the model.
func (LogP) Name() string { return "LogP" }

// PredictCycles charges computation plus per-message costs.
func (lp LogP) PredictCycles(c Characterization, m *topology.Machine) float64 {
	l := lp.L
	if l == 0 {
		if m.Sockets > 1 {
			l = float64(m.MemLatencyCycles(0, 1))
		} else {
			l = float64(m.MemLatency)
		}
	}
	o := lp.O
	if o == 0 {
		o = 40
	}
	p := float64(max(c.Threads, 1))
	comp := (c.Ops / 2) / p * c.Imbalance
	return comp + (c.Messages/p)*(l+2*o)
}

// MemoryLogP extends LogP with a hierarchical memory term: every
// memory access is priced with a textbook hit-ratio assumption,
// because a monolithic model cannot observe the program's actual cache
// behaviour — which is precisely the weakness the two-step strategy
// addresses.
type MemoryLogP struct {
	LogP
	// L1Ratio and L2Ratio are assumed hit ratios; defaults 0.90/0.08.
	L1Ratio, L2Ratio float64
}

// Name identifies the model.
func (MemoryLogP) Name() string { return "MemoryLogP" }

// PredictCycles adds the assumed-locality memory cost to LogP.
func (ml MemoryLogP) PredictCycles(c Characterization, m *topology.Machine) float64 {
	l1r := ml.L1Ratio
	if l1r == 0 {
		l1r = 0.90
	}
	l2r := ml.L2Ratio
	if l2r == 0 {
		l2r = 0.08
	}
	l1, _ := m.Cache(1)
	l2, _ := m.Cache(2)
	llc := m.LLC()
	rest := 1 - l1r - l2r
	llcr := rest * 0.75
	memr := rest * 0.25
	perAccess := l1r*float64(l1.LatencyCycles) + l2r*float64(l2.LatencyCycles) +
		llcr*float64(llc.LatencyCycles) + memr*float64(m.MemLatency)
	p := float64(max(c.Threads, 1))
	// Memory-level parallelism hides most of the cost on a superscalar
	// core; charge a quarter.
	memCost := c.MemAccesses / p * perAccess / 4
	return ml.LogP.PredictCycles(c, m) + memCost
}

// KappaNUMA is Schmollinger and Kaufmann's κNUMA: nested BSP behaviour
// with cheap inner-node communication and expensive inter-node
// communication priced by the machine's distance matrix.
type KappaNUMA struct {
	BSP
}

// Name identifies the model.
func (KappaNUMA) Name() string { return "κNUMA" }

// PredictCycles prices local and remote communication separately.
func (k KappaNUMA) PredictCycles(c Characterization, m *topology.Machine) float64 {
	l := k.L
	if l == 0 {
		l = 2000
	}
	p := float64(max(c.Threads, 1))
	wMax := (c.Ops / 2) / p * c.Imbalance
	// Inner-node traffic at local latency, inter-node at the mean
	// remote latency from the distance matrix.
	remoteLat := float64(m.MemLatency)
	if m.Sockets > 1 {
		var sum float64
		var cnt int
		for i := 0; i < m.Sockets; i++ {
			for j := 0; j < m.Sockets; j++ {
				if i != j {
					sum += float64(m.MemLatencyCycles(i, j))
					cnt++
				}
			}
		}
		remoteLat = sum / float64(cnt)
	}
	comm := c.Messages / p * remoteLat
	innerBarrier := c.Supersteps * l
	outerBarrier := c.Supersteps * l * m.MaxHops()
	return wMax + comm + innerBarrier + outerBarrier
}

// All returns every baseline with default parameters.
func All() []Model {
	return []Model{PRAM{}, BSP{}, LogP{}, MemoryLogP{}, KappaNUMA{}}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
