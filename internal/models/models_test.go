package models

import (
	"math"
	"testing"

	"numaperf/internal/exec"
	"numaperf/internal/topology"
	"numaperf/internal/workloads"
)

func runWL(t *testing.T, w workloads.Workload, threads int, mach *topology.Machine) *exec.Result {
	t.Helper()
	e, err := exec.NewEngine(exec.Config{Machine: mach, Threads: threads, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(w.Body())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCharacterize(t *testing.T) {
	res := runWL(t, workloads.ParallelSort{Elements: 1 << 13}, 4, topology.TwoSocket())
	c := Characterize(res)
	if c.Ops == 0 || c.MemAccesses == 0 {
		t.Fatalf("empty characterisation: %+v", c)
	}
	if c.Threads != 4 {
		t.Errorf("threads = %d", c.Threads)
	}
	if c.Supersteps < 2 {
		t.Errorf("supersteps = %g, want several (barrier rounds)", c.Supersteps)
	}
	if c.LocalFraction <= 0 || c.LocalFraction > 1 {
		t.Errorf("local fraction = %g", c.LocalFraction)
	}
	if c.Imbalance < 1 {
		t.Errorf("imbalance = %g, want ≥ 1", c.Imbalance)
	}
}

func TestAllModelsPredictPositive(t *testing.T) {
	res := runWL(t, workloads.Triad{Elements: 1 << 14}, 2, topology.TwoSocket())
	c := Characterize(res)
	m := topology.TwoSocket()
	for _, model := range All() {
		pred := model.PredictCycles(c, m)
		if pred <= 0 || math.IsNaN(pred) || math.IsInf(pred, 0) {
			t.Errorf("%s predicted %g", model.Name(), pred)
		}
		if model.Name() == "" {
			t.Error("unnamed model")
		}
	}
}

func TestPRAMIgnoresMemory(t *testing.T) {
	m := topology.TwoSocket()
	c := Characterization{Ops: 1e6, Threads: 4, Imbalance: 1}
	cheap := (PRAM{}).PredictCycles(c, m)
	c.MemAccesses = 1e9 // PRAM cannot see this
	expensive := (PRAM{}).PredictCycles(c, m)
	if cheap != expensive {
		t.Error("PRAM must be blind to memory accesses")
	}
	// Perfect speedup in P.
	c2 := c
	c2.Threads = 8
	if (PRAM{}).PredictCycles(c2, m) >= (PRAM{}).PredictCycles(c, m) {
		t.Error("PRAM must scale with threads")
	}
}

func TestBSPChargesBarriers(t *testing.T) {
	m := topology.TwoSocket()
	base := Characterization{Ops: 1e6, Threads: 4, Imbalance: 1, Supersteps: 1}
	many := base
	many.Supersteps = 100
	if (BSP{}).PredictCycles(many, m) <= (BSP{}).PredictCycles(base, m) {
		t.Error("more supersteps must cost more under BSP")
	}
}

func TestLogPChargesMessages(t *testing.T) {
	m := topology.TwoSocket()
	base := Characterization{Ops: 1e6, Threads: 4, Imbalance: 1}
	chatty := base
	chatty.Messages = 1e5
	if (LogP{}).PredictCycles(chatty, m) <= (LogP{}).PredictCycles(base, m) {
		t.Error("messages must cost under LogP")
	}
	// On UMA there is no remote latency; the default L falls back to
	// local DRAM latency and still prices messages.
	if (LogP{}).PredictCycles(chatty, topology.UMA()) <= (LogP{}).PredictCycles(base, topology.UMA()) {
		t.Error("LogP on UMA")
	}
}

func TestMemoryLogPChargesAccesses(t *testing.T) {
	m := topology.TwoSocket()
	base := Characterization{Ops: 1e6, Threads: 1, Imbalance: 1}
	heavy := base
	heavy.MemAccesses = 1e6
	if (MemoryLogP{}).PredictCycles(heavy, m) <= (MemoryLogP{}).PredictCycles(base, m) {
		t.Error("memory accesses must cost under Memory LogP")
	}
	// But it cannot distinguish cache-friendly from hostile patterns
	// with equal access counts — the monolithic-model weakness.
	if (MemoryLogP{}).PredictCycles(heavy, m) != (MemoryLogP{}).PredictCycles(heavy, m) {
		t.Error("deterministic")
	}
}

func TestKappaNUMAPricesTopology(t *testing.T) {
	c := Characterization{Ops: 1e6, Threads: 4, Imbalance: 1, Supersteps: 10, Messages: 1e4}
	flat := (KappaNUMA{}).PredictCycles(c, topology.TwoSocket())
	deep := (KappaNUMA{}).PredictCycles(c, topology.EightSocketGlueless())
	if deep <= flat {
		t.Errorf("deeper topology must cost more: %g vs %g", deep, flat)
	}
}

// The headline comparison: monolithic models cannot tell the
// cache-friendly and cache-hostile traversals apart (same ops, same
// access counts), while the actual costs differ hugely. This is the
// motivating failure the two-step strategy fixes.
func TestMonolithicModelsMissCacheBehaviour(t *testing.T) {
	mach := topology.TwoSocket()
	a := runWL(t, workloads.CacheMissA(512), 1, mach)
	b := runWL(t, workloads.CacheMissB(512), 1, mach)
	ca, cb := Characterize(a), Characterize(b)

	actualRatio := float64(b.Cycles) / float64(a.Cycles)
	if actualRatio < 1.4 {
		t.Fatalf("precondition: B/A cycle ratio %.2f", actualRatio)
	}
	for _, model := range All() {
		pa := model.PredictCycles(ca, mach)
		pb := model.PredictCycles(cb, mach)
		predictedRatio := pb / pa
		// Characterisations are nearly identical, so each monolithic
		// model predicts nearly identical costs — missing the real
		// ratio by a wide margin.
		if predictedRatio > actualRatio*0.8 {
			t.Errorf("%s predicted ratio %.2f suspiciously close to actual %.2f — baseline too informed",
				model.Name(), predictedRatio, actualRatio)
		}
	}
}

func TestModelsOnSingleSocket(t *testing.T) {
	// Degenerate UMA machine: every model must still predict something
	// positive and finite.
	uma := topology.UMA()
	c := Characterization{Ops: 1e6, MemAccesses: 1e5, Threads: 4,
		Imbalance: 1, Supersteps: 2, Messages: 100, LocalFraction: 1}
	for _, m := range All() {
		p := m.PredictCycles(c, uma)
		if p <= 0 || math.IsInf(p, 0) || math.IsNaN(p) {
			t.Errorf("%s on UMA predicted %g", m.Name(), p)
		}
	}
}
