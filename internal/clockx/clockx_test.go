package clockx

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderCapturesSchedule(t *testing.T) {
	var r Recorder
	r.Sleep(10 * time.Millisecond)
	r.Sleep(20 * time.Millisecond)
	got := r.Durations()
	if len(got) != 2 || got[0] != 10*time.Millisecond || got[1] != 20*time.Millisecond {
		t.Fatalf("recorded %v", got)
	}
	if r.Count() != 2 {
		t.Fatalf("count = %d, want 2", r.Count())
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// recorder.
	got[0] = 0
	if r.Durations()[0] != 10*time.Millisecond {
		t.Error("Durations returned an aliased slice")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Fatalf("count = %d, want 800", r.Count())
	}
}

func TestFakeAdvanceWakesSleepers(t *testing.T) {
	start := time.Unix(0, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}

	done := make(chan struct{})
	go func() {
		f.Sleep(100 * time.Millisecond)
		close(done)
	}()
	// Wait for the sleeper to park.
	for f.Sleepers() == 0 {
		time.Sleep(time.Millisecond)
	}
	f.Advance(50 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("sleeper woke before its deadline")
	case <-time.After(10 * time.Millisecond):
	}
	f.Advance(50 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleeper never woke after Advance past its deadline")
	}
	if got := f.Now(); !got.Equal(start.Add(100 * time.Millisecond)) {
		t.Errorf("Now = %v after advances", got)
	}
}

func TestFakeSleepZeroReturnsImmediately(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	f.Sleep(0)
	f.Sleep(-time.Second)
	if f.Sleepers() != 0 {
		t.Error("non-positive sleeps must not park")
	}
}

func TestSystemClock(t *testing.T) {
	c := System()
	before := time.Now()
	got := c.Now()
	if got.Before(before.Add(-time.Second)) {
		t.Errorf("system Now %v implausibly far from %v", got, before)
	}
	c.Sleep(0) // must not panic
}
