// Package clockx is the shared deterministic time substrate of the
// test suites. Three packages had grown their own copies of the same
// helpers — a no-op sleep for retry loops, a mutex-guarded recorder
// that captures backoff schedules, and hand-rolled timestamp arithmetic
// for timeout tests — and the fleet control plane's heartbeat state
// machine needs a real manual clock on top. clockx provides all three
// behind one tiny interface, so production code can take a Clock and
// tests can drive time by hand without a single wall-clock sleep.
package clockx

import (
	"sync"
	"time"
)

// Clock abstracts the two time operations the supervision layers use:
// reading the current instant and blocking for a duration. Production
// code takes a Clock (defaulting to System when nil) so tests can
// substitute a Fake and drive heartbeat timeouts deterministically.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// System returns the wall clock: time.Now and time.Sleep.
func System() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time        { return time.Now() }
func (systemClock) Sleep(d time.Duration) { time.Sleep(d) }

// NoSleep is a drop-in replacement for time.Sleep that returns
// immediately — the helper every retry/backoff test had duplicated as a
// local noSleep.
func NoSleep(time.Duration) {}

// Recorder captures the durations passed to Sleep without sleeping,
// so a test can assert a deterministic backoff schedule replays
// exactly. Safe for concurrent use: chaos suites run under -race and
// record from pool workers while the test goroutine inspects.
type Recorder struct {
	mu    sync.Mutex
	slept []time.Duration
}

// Sleep records d and returns immediately. The method value r.Sleep
// satisfies the Sleep func(time.Duration) hooks used across the repo.
func (r *Recorder) Sleep(d time.Duration) {
	r.mu.Lock()
	r.slept = append(r.slept, d)
	r.mu.Unlock()
}

// Durations returns a copy of the recorded sleeps in call order.
func (r *Recorder) Durations() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.slept...)
}

// Count returns how many sleeps have been recorded.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slept)
}

// Fake is a manual clock: Now returns a programmed instant, Sleep
// blocks until Advance has moved the clock past the wake-up time. It
// lets heartbeat-supervision tests walk a probe through
// healthy → suspect → dead transitions with exact timestamps and no
// real waiting.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan struct{}
}

// NewFake returns a Fake clock starting at the given instant.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now returns the fake instant.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep blocks until the clock has been advanced to or past now+d.
// A non-positive d returns immediately.
func (f *Fake) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Lock()
	at := f.now.Add(d)
	ch := make(chan struct{})
	f.waiters = append(f.waiters, fakeWaiter{at: at, ch: ch})
	f.mu.Unlock()
	<-ch
}

// Advance moves the clock forward by d and wakes every sleeper whose
// deadline has passed.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	remaining := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.at.After(f.now) {
			close(w.ch)
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
	f.mu.Unlock()
}

// Sleepers returns the number of goroutines currently blocked in Sleep
// — a test hook for asserting that a loop has parked before advancing.
func (f *Fake) Sleepers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}
