// Package memsim is the execution-driven NUMA machine simulator that
// substitutes for the paper's Haswell-EX testbed. It models, per core,
// a set-associative L1/L2, a DTLB/STLB with page walks, line fill
// buffers with rejection, a page-bounded stream prefetcher and a 2-bit
// branch predictor; per socket, a shared inclusive L3 and uncore
// counters (LLC lookups, IMC traffic, QPI flits, package energy); and
// across sockets, DRAM latencies derived from the SLIT distance
// matrix. Every access updates the hardware event counters defined in
// internal/counters, which is what makes the paper's tools measurable
// without real PMU hardware.
package memsim

// cacheFlags bit layout.
const (
	lineValid      = 1 << 0
	linePrefetched = 1 << 1
	lineDirty      = 1 << 2
)

// cache is a set-associative cache with LRU replacement, stored as a
// structure of arrays to keep per-run allocation and reset cheap.
type cache struct {
	tags    []uint64 // line address per way slot
	use     []uint32 // LRU timestamp per way slot
	flags   []uint8
	owner   []int16 // last writing core (LLC coherence approximation)
	sets    int
	ways    int
	setMask uint64
	clock   uint32
}

func newCache(sets, ways int) *cache {
	n := sets * ways
	return &cache{
		tags:    make([]uint64, n),
		use:     make([]uint32, n),
		flags:   make([]uint8, n),
		owner:   make([]int16, n),
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
	}
}

func (c *cache) reset() {
	for i := range c.flags {
		c.flags[i] = 0
	}
	c.clock = 0
}

// lookup probes the cache for a line address and returns the way slot
// index on a hit (updating LRU state), or -1.
func (c *cache) lookup(lineAddr uint64) int {
	base := int(lineAddr&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.flags[i]&lineValid != 0 && c.tags[i] == lineAddr {
			c.clock++
			c.use[i] = c.clock
			return i
		}
	}
	return -1
}

// peek is lookup without the LRU update (used by prefetch probes that
// must not perturb replacement decisions).
func (c *cache) peek(lineAddr uint64) int {
	base := int(lineAddr&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.flags[i]&lineValid != 0 && c.tags[i] == lineAddr {
			return i
		}
	}
	return -1
}

// insert places a line into the cache, evicting the LRU way if the set
// is full. It returns the slot index and whether a valid line was
// evicted.
func (c *cache) insert(lineAddr uint64, fl uint8, owner int16) (slot int, evicted bool) {
	base := int(lineAddr&c.setMask) * c.ways
	victim := base
	var victimUse uint32 = ^uint32(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.flags[i]&lineValid == 0 {
			victim, evicted = i, false
			goto place
		}
		if c.use[i] < victimUse {
			victimUse = c.use[i]
			victim = i
		}
	}
	evicted = true
place:
	c.clock++
	c.tags[victim] = lineAddr
	c.use[victim] = c.clock
	c.flags[victim] = lineValid | fl
	c.owner[victim] = owner
	return victim, evicted
}

// invalidate removes a line if present.
func (c *cache) invalidate(lineAddr uint64) {
	if i := c.peek(lineAddr); i >= 0 {
		c.flags[i] = 0
	}
}

// occupancy returns the number of valid lines (test helper, O(n)).
func (c *cache) occupancy() int {
	n := 0
	for _, f := range c.flags {
		if f&lineValid != 0 {
			n++
		}
	}
	return n
}
