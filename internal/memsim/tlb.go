package memsim

// tlb is a small set-associative translation buffer keyed by virtual
// page number, with LRU replacement. It reuses the cache structure
// with page numbers in place of line addresses.
type tlb struct {
	c *cache
}

func newTLB(entries, ways int) *tlb {
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	return &tlb{c: newCache(sets, ways)}
}

func (t *tlb) lookup(vpage uint64) bool { return t.c.lookup(vpage) >= 0 }

func (t *tlb) insert(vpage uint64) { t.c.insert(vpage, 0, -1) }

func (t *tlb) reset() { t.c.reset() }

// streamPrefetcher is the L2 streamer: it watches demand-miss line
// addresses and, once it sees maxStreak consecutive lines in the same
// direction, prefetches degree lines ahead. Like the hardware it
// models, it never crosses a 4 KiB page boundary — which is exactly why
// the paper's strided micro-benchmark (Listing 2) sees L2 prefetch
// requests collapse by 90%.
type streamPrefetcher struct {
	lastLine  uint64
	direction int64 // +1, −1 or 0 (no stream)
	streak    int
	degree    int // lines fetched ahead once a stream is confirmed
	linesPage uint64
	// buf backs observeMiss's return value, reused across calls: the
	// simulator consumes the prefetch list before the next miss, and a
	// confirmed stream misses once per line, so a fresh allocation here
	// would run on the hottest sequential-access path.
	buf []uint64
}

func newStreamPrefetcher(lineBytes, pageBytes, degree int) *streamPrefetcher {
	return &streamPrefetcher{
		degree:    degree,
		linesPage: uint64(pageBytes / lineBytes),
		buf:       make([]uint64, 0, degree),
	}
}

func (p *streamPrefetcher) reset() {
	p.lastLine, p.direction, p.streak = 0, 0, 0
}

// observeMiss records a demand miss and returns the line addresses to
// prefetch (possibly none). The returned slice is only valid until the
// next observeMiss call.
func (p *streamPrefetcher) observeMiss(lineAddr uint64) []uint64 {
	var dir int64
	switch {
	case lineAddr == p.lastLine+1:
		dir = 1
	case lineAddr == p.lastLine-1:
		dir = -1
	}
	if dir != 0 && dir == p.direction {
		p.streak++
	} else if dir != 0 {
		p.direction = dir
		p.streak = 1
	} else {
		p.direction = 0
		p.streak = 0
	}
	p.lastLine = lineAddr
	if p.streak < 2 {
		return nil
	}
	// Confirmed stream: fetch ahead without leaving the page.
	out := p.buf[:0]
	page := lineAddr / p.linesPage
	next := lineAddr
	for i := 0; i < p.degree; i++ {
		if p.direction > 0 {
			next++
		} else {
			if next == 0 {
				break
			}
			next--
		}
		if next/p.linesPage != page {
			break // page boundary: hardware streamers stop here
		}
		out = append(out, next)
	}
	p.buf = out
	return out
}

// branchPredictor is a table of 2-bit saturating counters indexed by a
// static branch site ID. Workloads assign one site ID per static
// branch, mirroring PC-indexed prediction.
type branchPredictor struct {
	table [4096]uint8
}

func (b *branchPredictor) reset() {
	for i := range b.table {
		b.table[i] = 1 // weakly not-taken
	}
}

// predictAndUpdate returns the prediction for the site, then trains the
// counter with the actual outcome.
func (b *branchPredictor) predictAndUpdate(site uint16, taken bool) (predictedTaken bool) {
	i := int(site) & (len(b.table) - 1)
	s := b.table[i]
	predictedTaken = s >= 2
	if taken && s < 3 {
		b.table[i] = s + 1
	} else if !taken && s > 0 {
		b.table[i] = s - 1
	}
	return predictedTaken
}
