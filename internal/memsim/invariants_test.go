package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"numaperf/internal/counters"
	"numaperf/internal/topology"
)

// Cross-package invariants of the simulator, checked on randomised
// access streams.

// Load-source events partition all loads: L1 hits + LFB hits + L2 hits
// + L3 hits + DRAM loads = all loads.
func TestLoadSourcePartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(topology.TwoSocket())
		if err != nil {
			return false
		}
		for i := 0; i < 5000; i++ {
			addr := uint64(rng.Intn(1 << 22))
			s.Load(0, addr, rng.Intn(2), rng.Intn(4) == 0)
		}
		c := s.CoreCounts(0)
		sources := c.Get(counters.L1Hit) + c.Get(counters.HitLFB) +
			c.Get(counters.L2Hit) + c.Get(counters.L3Hit) +
			c.Get(counters.LocalDRAM) + c.Get(counters.RemoteDRAM)
		return sources == c.Get(counters.AllLoads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Miss hierarchies nest: L3 misses ≤ L2 misses ≤ L1 misses ≤ loads.
func TestMissHierarchyNesting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(topology.TwoSocket())
		if err != nil {
			return false
		}
		for i := 0; i < 5000; i++ {
			s.Load(0, uint64(rng.Intn(1<<24)), 0, false)
		}
		c := s.CoreCounts(0)
		l1, l2, l3 := c.Get(counters.L1Miss), c.Get(counters.L2Miss), c.Get(counters.L3Miss)
		return l3 <= l2 && l2 <= l1 && l1 <= c.Get(counters.AllLoads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// QPI flit accounting balances: total transmitted equals total
// received across all sockets.
func TestQPIFlitBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(topology.EightSocketGlueless())
		if err != nil {
			return false
		}
		for i := 0; i < 3000; i++ {
			core := rng.Intn(s.Machine().Cores())
			s.Load(core, uint64(rng.Intn(1<<25)), rng.Intn(8), false)
		}
		var tx, rx uint64
		for n := 0; n < s.Machine().Sockets; n++ {
			tx += s.UncoreCounts(n).Get(counters.UncQPITx)
			rx += s.UncoreCounts(n).Get(counters.UncQPIRx)
		}
		return tx == rx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Multi-hop latency ordering on the glueless 8-socket machine:
// local < 1-hop < 2-hop for dependent cold loads.
func TestMultiHopLatencyOrdering(t *testing.T) {
	s, err := New(topology.EightSocketGlueless())
	if err != nil {
		t.Fatal(err)
	}
	m := s.Machine()
	// Find a 1-hop and a 2-hop peer of node 0.
	oneHop, twoHop := -1, -1
	for n := 1; n < m.Sockets; n++ {
		switch m.NodeDistance(0, n) {
		case 21:
			oneHop = n
		case 31:
			twoHop = n
		}
	}
	if oneHop < 0 || twoHop < 0 {
		t.Fatal("topology lacks 1-hop/2-hop peers")
	}
	lat := func(home int, base uint64) uint64 {
		var sum uint64
		for i := uint64(0); i < 64; i++ {
			sum += s.Load(0, base+i*4096, home, true)
		}
		return sum
	}
	local := lat(0, 0)
	one := lat(oneHop, 1<<30)
	two := lat(twoHop, 1<<31)
	if !(local < one && one < two) {
		t.Errorf("latency ordering violated: local=%d 1hop=%d 2hop=%d", local, one, two)
	}
}

// Stores never change load-source counters.
func TestStoresDoNotCountAsLoads(t *testing.T) {
	s, err := New(topology.TwoSocket())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2048; i++ {
		s.Store(0, i*64, 0)
	}
	c := s.CoreCounts(0)
	for _, id := range []counters.EventID{
		counters.AllLoads, counters.L1Hit, counters.L1Miss,
		counters.L3Hit, counters.LocalDRAM, counters.RemoteDRAM,
	} {
		if c.Get(id) != 0 {
			t.Errorf("%s = %d after store-only stream", counters.Def(id).Name, c.Get(id))
		}
	}
}

// Cache occupancy never exceeds capacity.
func TestCacheOccupancyBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newCache(8, 4)
		for i := 0; i < 500; i++ {
			c.insert(uint64(rng.Intn(4096)), 0, -1)
		}
		return c.occupancy() <= 8*4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// An inserted line is immediately findable; after filling its set with
// `ways` other lines it is gone (LRU with no touches).
func TestCacheInsertLookupEvict(t *testing.T) {
	c := newCache(16, 4)
	const line = 0x100 // set 0
	c.insert(line, 0, -1)
	if c.peek(line) < 0 {
		t.Fatal("inserted line not found")
	}
	for i := uint64(1); i <= 4; i++ {
		c.insert(line+i*16, 0, -1) // same set
	}
	if c.peek(line) >= 0 {
		t.Error("LRU line survived 4 insertions into a 4-way set")
	}
}

// Energy accounting is monotone in work.
func TestEnergyMonotone(t *testing.T) {
	run := func(n int) uint64 {
		s, _ := New(topology.TwoSocket())
		for i := 0; i < n; i++ {
			s.Load(0, uint64(i)*64, 0, false)
		}
		s.Finalize()
		return s.UncoreCounts(0).Get(counters.UncPkgEnergy)
	}
	if run(20000) <= run(2000) {
		t.Error("more work must consume more energy")
	}
}
