package memsim

import (
	"fmt"

	"numaperf/internal/counters"
	"numaperf/internal/topology"
)

// Tunable micro-architecture constants. They are exported so ablation
// experiments can document them, but they are not meant to be changed
// per run.
const (
	// MLPMax caps the memory-level parallelism credit for independent
	// loads: up to this many outstanding misses overlap.
	MLPMax = 4
	// BranchMissPenalty is the pipeline flush cost in cycles.
	BranchMissPenalty = 15
	// CacheToCachePenalty is the extra latency for a line owned by
	// another core (cross-core snoop forward).
	CacheToCachePenalty = 25
	// AtomicLockCycles is how long an atomic operation locks the L1D.
	AtomicLockCycles = 18
	// TLBLockCycles is how long an uncore-managed page walk locks the
	// L1D (the mechanism behind the paper's Fig. 9 correlation).
	TLBLockCycles = 8
	// PrefetchDegree is how many lines the streamer fetches ahead.
	PrefetchDegree = 2
	// FBRetryCycles is the re-issue penalty after a fill-buffer
	// rejection.
	FBRetryCycles = 2
	// MissIssueCycles is the issue slot cost of an independent offcore
	// miss; the out-of-order core moves on while the fill is pending,
	// so throughput is bounded by the fill buffers, not the miss
	// latency.
	MissIssueCycles = 1
)

// LoadObserver receives every retired load with its use latency; the
// perf layer installs one to implement PEBS load-latency sampling.
type LoadObserver func(core int, vaddr uint64, latency uint64)

type pendingMiss struct {
	line       uint64
	completeAt uint64
}

type coreSim struct {
	id      int
	node    int
	l1, l2  *cache
	dtlb    *tlb
	stlb    *tlb
	pf      *streamPrefetcher
	bp      branchPredictor
	pending []pendingMiss
	cycle   uint64
	atomics uint64 // conflict counter for deterministic machine clears
	counts  counters.Counts
}

// Sim is one simulated NUMA machine executing memory and branch
// operations on behalf of the execution engine.
type Sim struct {
	mach      *topology.Machine
	cores     []*coreSim
	l3        []*cache // per socket
	uncore    []counters.Counts
	lineShift uint
	pageShift uint
	l1Lat     uint64
	l2Lat     uint64
	l3Lat     uint64
	observer  LoadObserver
}

// New builds a simulator for the machine. The machine must validate.
func New(m *topology.Machine) (*Sim, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	l1, _ := m.Cache(1)
	l2, _ := m.Cache(2)
	llc := m.LLC()
	s := &Sim{
		mach:      m,
		lineShift: log2(uint64(m.LineBytes())),
		pageShift: log2(uint64(m.PageBytes)),
		l1Lat:     l1.LatencyCycles,
		l2Lat:     l2.LatencyCycles,
		l3Lat:     llc.LatencyCycles,
	}
	s.cores = make([]*coreSim, m.Cores())
	for i := range s.cores {
		cs := &coreSim{
			id:     i,
			node:   m.NodeOfCore(i),
			l1:     newCache(l1.Sets(), l1.Ways),
			l2:     newCache(l2.Sets(), l2.Ways),
			dtlb:   newTLB(m.TLB.L1Entries, m.TLB.L1Ways),
			stlb:   newTLB(m.TLB.L2Entries, m.TLB.L2Ways),
			pf:     newStreamPrefetcher(m.LineBytes(), m.PageBytes, PrefetchDegree),
			counts: counters.NewCounts(),
		}
		cs.bp.reset()
		s.cores[i] = cs
	}
	s.l3 = make([]*cache, m.Sockets)
	s.uncore = make([]counters.Counts, m.Sockets)
	for n := 0; n < m.Sockets; n++ {
		s.l3[n] = newCache(llc.Sets(), llc.Ways)
		s.uncore[n] = counters.NewCounts()
	}
	return s, nil
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Machine returns the simulated machine description.
func (s *Sim) Machine() *topology.Machine { return s.mach }

// SetLoadObserver installs (or clears, with nil) the PEBS hook.
func (s *Sim) SetLoadObserver(o LoadObserver) { s.observer = o }

// Reset clears all microarchitectural state and counters so the
// simulator can be reused for another run without reallocating.
func (s *Sim) Reset() {
	for _, cs := range s.cores {
		cs.l1.reset()
		cs.l2.reset()
		cs.dtlb.reset()
		cs.stlb.reset()
		cs.pf.reset()
		cs.bp.reset()
		cs.pending = cs.pending[:0]
		cs.cycle = 0
		cs.atomics = 0
		for i := range cs.counts {
			cs.counts[i] = 0
		}
	}
	for n := range s.l3 {
		s.l3[n].reset()
		for i := range s.uncore[n] {
			s.uncore[n][i] = 0
		}
	}
}

// translate performs the TLB lookup for a virtual page and returns the
// translation penalty in cycles. remote marks pages homed on another
// node: their walks involve the uncore, which locks the L1 data cache
// for the duration — the mechanism behind the paper's Fig. 9
// correlation ("the L1D cache is locked due to TLB page walks by the
// uncore").
func (s *Sim) translate(cs *coreSim, vpage uint64, store, remote bool) uint64 {
	if cs.dtlb.lookup(vpage) {
		return 0
	}
	if cs.stlb.lookup(vpage) {
		if !store {
			cs.counts[counters.DTLBLoadMissSTLBHit]++
		}
		cs.dtlb.insert(vpage)
		return s.mach.TLB.L2HitCycles
	}
	// Full page walk.
	if store {
		cs.counts[counters.DTLBStoreMissWalk]++
	} else {
		cs.counts[counters.DTLBLoadMissWalk]++
	}
	walk := s.mach.TLB.PageWalkCycles
	cs.counts[counters.DTLBWalkDuration] += walk
	cs.counts[counters.PageWalkerLoads] += 2
	if remote {
		cs.counts[counters.CacheLockCycle] += TLBLockCycles
		s.uncore[cs.node][counters.UncTLBLockWalks]++
	}
	cs.stlb.insert(vpage)
	cs.dtlb.insert(vpage)
	return walk
}

// dramAccess accounts a DRAM access from a core on fromNode to memory
// homed on homeNode and returns its latency.
func (s *Sim) dramAccess(cs *coreSim, homeNode int, write bool) uint64 {
	home := homeNode
	if home < 0 || home >= s.mach.Sockets {
		home = cs.node
	}
	if write {
		s.uncore[home][counters.UncIMCWrite]++
	} else {
		s.uncore[home][counters.UncIMCRead]++
	}
	if home != cs.node {
		// Request travels out on the local socket, in on the home
		// socket; the data response takes the reverse path.
		s.uncore[cs.node][counters.UncQPITx] += 2
		s.uncore[home][counters.UncQPIRx] += 2
		s.uncore[home][counters.UncQPITx] += 2
		s.uncore[cs.node][counters.UncQPIRx] += 2
		if !write {
			s.uncore[home][counters.UncIMCRemoteRd]++
		}
	}
	return s.mach.MemLatencyCycles(cs.node, home)
}

// lfbAdmit models line-fill-buffer admission for an offcore miss. When
// all buffers are busy the demand is rejected (FB_FULL) and the core
// stalls until the earliest outstanding miss completes.
func (s *Sim) lfbAdmit(cs *coreSim) {
	// Purge completed entries.
	live := cs.pending[:0]
	for _, p := range cs.pending {
		if p.completeAt > cs.cycle {
			live = append(live, p)
		}
	}
	cs.pending = live
	if len(cs.pending) < s.mach.LFBEntries {
		return
	}
	cs.counts[counters.FBFull]++
	earliest := cs.pending[0].completeAt
	for _, p := range cs.pending[1:] {
		if p.completeAt < earliest {
			earliest = p.completeAt
		}
	}
	if earliest > cs.cycle {
		stall := earliest - cs.cycle
		cs.cycle = earliest
		cs.counts[counters.StallsTotal] += stall
		cs.counts[counters.StallsLDM] += stall
	}
	cs.cycle += FBRetryCycles
	live = cs.pending[:0]
	for _, p := range cs.pending {
		if p.completeAt > cs.cycle {
			live = append(live, p)
		}
	}
	cs.pending = live
}

// lfbHit reports whether a line is already being filled.
func (s *Sim) lfbHit(cs *coreSim, line uint64) bool {
	for _, p := range cs.pending {
		if p.line == line && p.completeAt > cs.cycle {
			return true
		}
	}
	return false
}

// prefetch runs the streamer after a demand L1 miss.
func (s *Sim) prefetch(cs *coreSim, line uint64, homeNode int) {
	for _, pfLine := range cs.pf.observeMiss(line) {
		cs.counts[counters.L2PFRequests]++
		if cs.l2.peek(pfLine) >= 0 {
			cs.counts[counters.L2PFHit]++
			continue
		}
		cs.counts[counters.L2PFMiss]++
		cs.counts[counters.OffcoreAllRd]++
		// Prefetches that miss L2 access the L3.
		cs.counts[counters.L3Reference]++
		s.uncore[cs.node][counters.UncLLCLookup]++
		l3 := s.l3[cs.node]
		if l3.lookup(pfLine) < 0 {
			cs.counts[counters.L3MissRef]++
			s.dramAccess(cs, homeNode, false)
			l3.insert(pfLine, 0, -1)
		}
		cs.l2.insert(pfLine, linePrefetched, -1)
		cs.counts[counters.L2LinesIn]++
	}
}

// Load executes a retired load on the given core. vaddr is the virtual
// address, homeNode the NUMA node owning the backing page, and
// dependent marks serialised (pointer-chase style) loads that cannot
// overlap with other misses. It returns the use latency in cycles —
// the quantity PEBS load-latency sampling reports.
//
// Timing: dependent loads stall the core for their full use latency.
// Independent loads retire out of order — cache hits cost a fraction of
// their latency (overlapped up to the MLP credit) and offcore misses
// cost only their issue slot, with throughput bounded by the line fill
// buffers (a full LFB rejects the demand and stalls the core until the
// oldest miss completes, which is what the FB_FULL counter records).
func (s *Sim) Load(core int, vaddr uint64, homeNode int, dependent bool) uint64 {
	cs := s.cores[core]
	cs.counts[counters.AllLoads]++
	cs.counts[counters.InstRetired]++
	cs.counts[counters.UopsRetired]++

	walk := s.translate(cs, vaddr>>s.pageShift, false, nodeOf(s, homeNode, cs) != cs.node)
	lat := walk
	line := vaddr >> s.lineShift

	missedL1 := false
	offcore := false
	switch {
	case cs.l1.lookup(line) >= 0:
		cs.counts[counters.L1Hit]++
		lat += s.l1Lat
	case s.lfbHit(cs, line):
		cs.counts[counters.L1Miss]++
		cs.counts[counters.HitLFB]++
		missedL1 = true
		lat += s.l2Lat // remaining fill time, approximated
	default:
		missedL1 = true
		cs.counts[counters.L1Miss]++
		s.prefetch(cs, line, homeNode)
		if w := cs.l2.lookup(line); w >= 0 {
			cs.counts[counters.L2Hit]++
			cs.counts[counters.L2DemandHit]++
			if cs.l2.flags[w]&linePrefetched != 0 {
				cs.counts[counters.LoadHitPre]++
				cs.l2.flags[w] &^= linePrefetched
			}
			lat += s.l2Lat
		} else {
			offcore = true
			cs.counts[counters.L2Miss]++
			cs.counts[counters.L2DemandMiss]++
			cs.counts[counters.OffcoreDemandRd]++
			cs.counts[counters.OffcoreAllRd]++
			cs.counts[counters.L3Reference]++
			s.uncore[cs.node][counters.UncLLCLookup]++
			s.lfbAdmit(cs)
			l3 := s.l3[cs.node]
			if w3 := l3.lookup(line); w3 >= 0 {
				cs.counts[counters.L3Hit]++
				lat += s.l3Lat
				if o := l3.owner[w3]; o >= 0 && int(o) != core {
					lat += CacheToCachePenalty
				}
			} else {
				cs.counts[counters.L3MissRef]++
				cs.counts[counters.L3Miss]++
				if nodeOf(s, homeNode, cs) == cs.node {
					cs.counts[counters.LocalDRAM]++
				} else {
					cs.counts[counters.RemoteDRAM]++
				}
				lat += s.l3Lat + s.dramAccess(cs, homeNode, false)
				l3.insert(line, 0, -1)
			}
			cs.pending = append(cs.pending, pendingMiss{line: line, completeAt: cs.cycle + lat})
			cs.l2.insert(line, 0, -1)
			cs.counts[counters.L2LinesIn]++
		}
		if _, ev := cs.l1.insert(line, 0, -1); ev {
			cs.counts[counters.L1DReplace]++
		}
	}

	// Advance time. Independent loads overlap: offcore misses cost
	// only their issue slot (the LFB admission above provides the real
	// throughput bound) and page walks overlap with execution except
	// for a quarter of their duration.
	var visible uint64
	switch {
	case dependent:
		visible = lat
	case offcore:
		visible = MissIssueCycles + walk/4
	case missedL1:
		visible = (lat - walk) / MLPMax
	default:
		visible = 1 + walk/4
	}
	if visible < 1 {
		visible = 1
	}
	cs.cycle += visible
	if missedL1 {
		cs.counts[counters.L1DPendMiss] += lat
		if visible > 1 {
			cs.counts[counters.StallsTotal] += visible - 1
			cs.counts[counters.StallsLDM] += visible - 1
			if offcore {
				cs.counts[counters.StallsL2] += visible - 1
			}
		}
	}
	if s.observer != nil {
		s.observer(core, vaddr, lat)
	}
	return lat
}

func nodeOf(s *Sim, homeNode int, cs *coreSim) int {
	if homeNode < 0 || homeNode >= s.mach.Sockets {
		return cs.node
	}
	return homeNode
}

// Store executes a retired store (write-allocate, store-buffered so it
// costs the core a single cycle unless translation stalls it).
func (s *Sim) Store(core int, vaddr uint64, homeNode int) {
	cs := s.cores[core]
	cs.counts[counters.AllStores]++
	cs.counts[counters.InstRetired]++
	cs.counts[counters.UopsRetired]++

	penalty := s.translate(cs, vaddr>>s.pageShift, true, nodeOf(s, homeNode, cs) != cs.node)
	line := vaddr >> s.lineShift

	if w := cs.l1.lookup(line); w >= 0 {
		cs.l1.flags[w] |= lineDirty
		cs.cycle += 1 + penalty
		s.markOwner(cs, line)
		return
	}
	// RFO: fetch the line for ownership.
	if w := cs.l2.lookup(line); w >= 0 {
		cs.l2.flags[w] |= lineDirty
	} else {
		cs.counts[counters.OffcoreAllRd]++
		cs.counts[counters.L3Reference]++
		s.uncore[cs.node][counters.UncLLCLookup]++
		l3 := s.l3[cs.node]
		if l3.lookup(line) < 0 {
			cs.counts[counters.L3MissRef]++
			s.dramAccess(cs, homeNode, false)
			// Allocating store traffic eventually writes back.
			s.dramAccess(cs, homeNode, true)
			l3.insert(line, lineDirty, int16(core))
		}
		cs.l2.insert(line, lineDirty, -1)
		cs.counts[counters.L2LinesIn]++
	}
	if _, ev := cs.l1.insert(line, lineDirty, -1); ev {
		cs.counts[counters.L1DReplace]++
	}
	s.markOwner(cs, line)
	cs.cycle += 1 + penalty
}

// markOwner records the writing core in the socket L3 so later readers
// on other cores pay the cache-to-cache penalty.
func (s *Sim) markOwner(cs *coreSim, line uint64) {
	l3 := s.l3[cs.node]
	if w := l3.peek(line); w >= 0 {
		l3.owner[w] = int16(cs.id)
		l3.flags[w] |= lineDirty
	}
}

// Atomic executes a locked read-modify-write. A line last written by
// another core is stale in the local caches: the private copies are
// invalidated first, so the load pays the cache-to-cache transfer, and
// every fourth such conflict triggers a memory-ordering machine clear —
// the false-sharing ping-pong signature.
func (s *Sim) Atomic(core int, vaddr uint64, homeNode int) uint64 {
	cs := s.cores[core]
	cs.counts[counters.LockLoads]++

	l3 := s.l3[cs.node]
	line := vaddr >> s.lineShift
	conflict := false
	if w := l3.peek(line); w >= 0 {
		if o := l3.owner[w]; o >= 0 && int(o) != core {
			conflict = true
			cs.l1.invalidate(line)
			cs.l2.invalidate(line)
		}
	}
	lat := s.Load(core, vaddr, homeNode, true)
	cs.counts[counters.CacheLockCycle] += AtomicLockCycles
	cs.cycle += AtomicLockCycles
	if conflict {
		cs.atomics++
		if cs.atomics%4 == 0 {
			cs.counts[counters.MachineClearsMO]++
			cs.cycle += BranchMissPenalty
		}
	}
	if w := l3.peek(line); w >= 0 {
		l3.owner[w] = int16(core)
	}
	cs.counts[counters.AllStores]++
	cs.counts[counters.UopsRetired]++
	return lat + AtomicLockCycles
}

// Instr accounts n non-memory instructions (retiring 2 per cycle).
func (s *Sim) Instr(core int, n uint64) {
	cs := s.cores[core]
	cs.counts[counters.InstRetired] += n
	cs.counts[counters.UopsRetired] += n
	cs.cycle += (n + 1) / 2
}

// Branch executes a conditional branch at a static site.
func (s *Sim) Branch(core int, site uint16, taken bool) {
	cs := s.cores[core]
	cs.counts[counters.BranchRetired]++
	cs.counts[counters.InstRetired]++
	cs.counts[counters.UopsRetired]++
	predicted := cs.bp.predictAndUpdate(site, taken)
	if predicted != taken {
		cs.counts[counters.BranchMiss]++
		cs.cycle += BranchMissPenalty
		if taken {
			// Resolved late, executed non-speculatively.
			cs.counts[counters.SpecTakenJumps]++
		}
	} else if taken {
		// Correctly predicted taken jumps execute speculatively ahead
		// of retirement and again count at retirement.
		cs.counts[counters.SpecTakenJumps] += 2
	}
	cs.cycle++
}

// AddEvent adds n occurrences of an event on a core; the engine uses
// this for software events (page faults, allocations, barrier waits)
// that the hardware simulation does not produce itself.
func (s *Sim) AddEvent(core int, id counters.EventID, n uint64) {
	s.cores[core].counts[id] += n
}

// Cycles returns the current cycle count of a core.
func (s *Sim) Cycles(core int) uint64 { return s.cores[core].cycle }

// MaxCycles returns the makespan: the largest core cycle count.
func (s *Sim) MaxCycles() uint64 {
	var max uint64
	for _, cs := range s.cores {
		if cs.cycle > max {
			max = cs.cycle
		}
	}
	return max
}

// AdvanceTo moves an idle core's clock forward (used by the scheduler
// for barrier waits). It never moves a clock backwards.
func (s *Sim) AdvanceTo(core int, cycle uint64) {
	cs := s.cores[core]
	if cycle > cs.cycle {
		cs.counts[counters.StallsTotal] += cycle - cs.cycle
		cs.cycle = cycle
	}
}

// Finalize derives the end-of-run counters (cycle counts, instruction
// cache background misses, package energy) and must be called once
// after the workload completes.
func (s *Sim) Finalize() {
	for _, cs := range s.cores {
		cs.counts[counters.CPUCycles] = cs.cycle
		cs.counts[counters.RefCycles] = cs.cycle
		cs.counts[counters.ICacheMisses] = cs.counts[counters.InstRetired] / 50000
	}
	for n := range s.uncore {
		var cyc, mem uint64
		for _, cs := range s.cores {
			if cs.node == n {
				cyc += cs.cycle
			}
		}
		mem = s.uncore[n][counters.UncIMCRead] + s.uncore[n][counters.UncIMCWrite]
		// Package energy in µJ: static+dynamic core power plus DRAM
		// traffic, scaled to plausible Haswell-EX magnitudes.
		s.uncore[n][counters.UncPkgEnergy] = cyc/25 + mem/2
	}
}

// CoreCounts returns the live counter vector of one core (not a copy).
func (s *Sim) CoreCounts(core int) counters.Counts { return s.cores[core].counts }

// UncoreCounts returns the live uncore counter vector of one socket.
func (s *Sim) UncoreCounts(socket int) counters.Counts { return s.uncore[socket] }

// TotalCounts aggregates all core and uncore counters into one vector.
func (s *Sim) TotalCounts() counters.Counts {
	total := counters.NewCounts()
	for _, cs := range s.cores {
		total.Add(cs.counts)
	}
	for _, u := range s.uncore {
		total.Add(u)
	}
	return total
}

// String describes the simulator configuration.
func (s *Sim) String() string {
	return fmt.Sprintf("memsim(%s: %d cores, %d sockets)", s.mach.Name, s.mach.Cores(), s.mach.Sockets)
}
