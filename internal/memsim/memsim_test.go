package memsim

import (
	"testing"

	"numaperf/internal/counters"
	"numaperf/internal/topology"
)

func newSim(t *testing.T) *Sim {
	t.Helper()
	s, err := New(topology.TwoSocket())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsInvalidMachine(t *testing.T) {
	m := topology.TwoSocket()
	m.Sockets = 0
	if _, err := New(m); err == nil {
		t.Fatal("invalid machine must be rejected")
	}
}

func TestSequentialScanHitsL1AndPrefetches(t *testing.T) {
	s := newSim(t)
	const n = 64 * 1024 // 64 KiB sequential floats
	for addr := uint64(0); addr < n; addr += 4 {
		s.Load(0, addr, 0, false)
	}
	s.Finalize()
	c := s.CoreCounts(0)
	loads := c.Get(counters.AllLoads)
	l1hit := c.Get(counters.L1Hit)
	if loads != n/4 {
		t.Fatalf("loads = %d, want %d", loads, n/4)
	}
	// 16 floats per 64-byte line: at most 1/16 of loads miss L1.
	if float64(l1hit)/float64(loads) < 0.9 {
		t.Errorf("sequential L1 hit rate = %.2f, want > 0.9", float64(l1hit)/float64(loads))
	}
	if c.Get(counters.L2PFRequests) == 0 {
		t.Error("sequential scan must trigger the stream prefetcher")
	}
	if c.Get(counters.LoadHitPre) == 0 {
		t.Error("some demand loads must hit prefetched lines")
	}
	if c.Get(counters.CPUCycles) == 0 {
		t.Error("Finalize must materialise cycle counts")
	}
}

func TestStridedScanDefeatsPrefetcherAndL1(t *testing.T) {
	s := newSim(t)
	// 4 KiB stride (one page): the streamer must stay silent and every
	// access must miss L1 (all lines alias to the same L1 set).
	const rows = 512
	for r := 0; r < 4; r++ {
		for i := uint64(0); i < rows; i++ {
			s.Load(0, i*4096, 0, false)
		}
	}
	s.Finalize()
	c := s.CoreCounts(0)
	if c.Get(counters.L2PFRequests) != 0 {
		t.Errorf("page-strided scan must not prefetch, got %d requests", c.Get(counters.L2PFRequests))
	}
	missRate := float64(c.Get(counters.L1Miss)) / float64(c.Get(counters.AllLoads))
	if missRate < 0.9 {
		t.Errorf("strided L1 miss rate = %.2f, want ≈ 1", missRate)
	}
	if c.Get(counters.FBFull) == 0 {
		t.Error("strided misses must saturate the fill buffers")
	}
	if c.Get(counters.DTLBLoadMissWalk) == 0 {
		t.Error("page-strided scan must cause TLB walks")
	}
}

func TestSequentialVsStridedCycles(t *testing.T) {
	seq := newSim(t)
	for addr := uint64(0); addr < 1<<18; addr += 4 {
		seq.Load(0, addr, 0, false)
	}
	strided := newSim(t)
	// Same number of loads, page-strided.
	n := (1 << 18) / 4
	for i := 0; i < n; i++ {
		strided.Load(0, uint64(i%512)*4096+uint64(i/512)*4, 0, false)
	}
	if strided.Cycles(0) <= 2*seq.Cycles(0) {
		t.Errorf("strided run (%d cyc) must cost far more than sequential (%d cyc)",
			strided.Cycles(0), seq.Cycles(0))
	}
}

func TestLocalVsRemoteDRAM(t *testing.T) {
	s := newSim(t)
	// Page-strided loads so each access misses all caches on first
	// touch; home node 1 is remote for core 0.
	var latLocal, latRemote uint64
	for i := uint64(0); i < 256; i++ {
		latLocal += s.Load(0, i*4096, 0, false)
	}
	for i := uint64(0); i < 256; i++ {
		latRemote += s.Load(0, (1<<30)+i*4096, 1, false)
	}
	s.Finalize()
	c := s.CoreCounts(0)
	if c.Get(counters.LocalDRAM) == 0 || c.Get(counters.RemoteDRAM) == 0 {
		t.Fatalf("local=%d remote=%d, want both > 0",
			c.Get(counters.LocalDRAM), c.Get(counters.RemoteDRAM))
	}
	if latRemote <= latLocal {
		t.Errorf("remote aggregate latency %d must exceed local %d", latRemote, latLocal)
	}
	// Remote accesses must generate QPI traffic on both sockets and
	// remote-read accounting at the home IMC.
	if s.UncoreCounts(0).Get(counters.UncQPITx) == 0 ||
		s.UncoreCounts(1).Get(counters.UncQPIRx) == 0 {
		t.Error("remote access must produce QPI flits")
	}
	if s.UncoreCounts(1).Get(counters.UncIMCRemoteRd) == 0 {
		t.Error("home IMC must count remote reads")
	}
	if s.UncoreCounts(0).Get(counters.UncIMCRemoteRd) != 0 {
		t.Error("local socket must not count remote reads for its own cores")
	}
}

func TestDependentChaseSeesFullLatency(t *testing.T) {
	s := newSim(t)
	m := s.Machine()
	// Cold page-strided dependent loads: latency must be at least the
	// local DRAM latency, every time.
	for i := uint64(0); i < 64; i++ {
		lat := s.Load(0, i*4096, 0, true)
		if lat < m.MemLatency {
			t.Fatalf("dependent cold load latency %d below DRAM latency %d", lat, m.MemLatency)
		}
	}
	// Independent loads overlap: cycles advance slower than the sum of
	// latencies.
	s2 := newSim(t)
	var total uint64
	for i := uint64(0); i < 64; i++ {
		total += s2.Load(0, i*4096, 0, false)
	}
	if s2.Cycles(0) >= total {
		t.Errorf("independent misses must overlap: cycles=%d latencies=%d", s2.Cycles(0), total)
	}
}

func TestHitLFB(t *testing.T) {
	s := newSim(t)
	// Warm the TLB so the misses below issue back to back.
	for i := uint64(0); i < 9; i++ {
		s.Load(0, i*4096+64, 0, false)
	}
	s.Instr(0, 10000) // drain the warm-up fills
	// Fill one L1 set (8 ways) and keep misses outstanding, then
	// re-touch the first line: it has been evicted from L1 but its fill
	// is still pending, so the load must hit the fill buffer.
	for i := uint64(0); i < 9; i++ {
		s.Load(0, i*4096, 0, false) // all alias to L1 set 0
	}
	before := s.CoreCounts(0).Get(counters.HitLFB)
	s.Load(0, 0, 0, false)
	if got := s.CoreCounts(0).Get(counters.HitLFB); got <= before {
		t.Errorf("HIT_LFB = %d, want > %d", got, before)
	}
}

func TestL2HitAfterEviction(t *testing.T) {
	s := newSim(t)
	// Touch 16 lines aliasing to one L1 set; first 8 are evicted from
	// L1 but stay in L2 (different L2 sets). Wait out the fills, then
	// reload line 0: L2 hit.
	for i := uint64(0); i < 16; i++ {
		s.Load(0, i*4096, 0, false)
	}
	s.Instr(0, 100000) // drain pending fills
	s.Load(0, 0, 0, false)
	c := s.CoreCounts(0)
	if c.Get(counters.L2Hit) == 0 {
		t.Error("reload after L1 eviction must hit L2")
	}
}

func TestBranchPrediction(t *testing.T) {
	s := newSim(t)
	// A heavily biased branch is learned quickly.
	for i := 0; i < 1000; i++ {
		s.Branch(0, 1, true)
	}
	c := s.CoreCounts(0)
	if miss := c.Get(counters.BranchMiss); miss > 5 {
		t.Errorf("biased branch misses = %d, want ≤ 5", miss)
	}
	if c.Get(counters.BranchRetired) != 1000 {
		t.Errorf("retired = %d", c.Get(counters.BranchRetired))
	}
	// Speculative taken jumps ≈ 2 per correctly predicted taken branch.
	if spec := c.Get(counters.SpecTakenJumps); spec < 1900 {
		t.Errorf("spec taken jumps = %d, want ≈ 2000", spec)
	}

	// A pseudo-random branch mispredicts often and speculates less.
	s2 := newSim(t)
	lcg := uint32(1)
	for i := 0; i < 1000; i++ {
		lcg = lcg*1103515245 + 12345
		s2.Branch(0, 2, lcg&0x10000 != 0)
	}
	c2 := s2.CoreCounts(0)
	if miss := c2.Get(counters.BranchMiss); miss < 200 {
		t.Errorf("random branch misses = %d, want ≥ 200", miss)
	}
	if c2.Get(counters.SpecTakenJumps) >= c.Get(counters.SpecTakenJumps) {
		t.Error("unpredictable branches must speculate fewer jumps")
	}
}

func TestAtomicsLockL1D(t *testing.T) {
	s := newSim(t)
	for i := 0; i < 100; i++ {
		s.Atomic(0, 64, 0)
	}
	c := s.CoreCounts(0)
	if c.Get(counters.LockLoads) != 100 {
		t.Errorf("lock loads = %d", c.Get(counters.LockLoads))
	}
	if c.Get(counters.CacheLockCycle) < 100*AtomicLockCycles {
		t.Errorf("lock cycles = %d", c.Get(counters.CacheLockCycle))
	}
}

func TestContendedAtomicsCauseMachineClears(t *testing.T) {
	s := newSim(t)
	// Cores 0 and 1 are on the same socket and ping-pong one line.
	for i := 0; i < 64; i++ {
		s.Atomic(0, 128, 0)
		s.Atomic(1, 128, 0)
	}
	total := s.CoreCounts(0).Get(counters.MachineClearsMO) +
		s.CoreCounts(1).Get(counters.MachineClearsMO)
	if total == 0 {
		t.Error("contended atomics must trigger memory-ordering clears")
	}
	// Uncontended atomics on a private line must not.
	s2 := newSim(t)
	for i := 0; i < 64; i++ {
		s2.Atomic(0, 128, 0)
	}
	if s2.CoreCounts(0).Get(counters.MachineClearsMO) != 0 {
		t.Error("private atomics must not clear")
	}
}

func TestCrossCoreSharingPenalty(t *testing.T) {
	s := newSim(t)
	// Core 0 writes a line; core 1 (same socket) reads it from L3 with
	// the cache-to-cache penalty on top of the L3 latency.
	s.Store(0, 4096, 0)
	s.Instr(0, 100000)
	lat := s.Load(1, 4096, 0, true)
	l3, _ := s.Machine().Cache(3)
	if lat < l3.LatencyCycles+CacheToCachePenalty {
		t.Errorf("shared-line load latency %d, want ≥ %d", lat, l3.LatencyCycles+CacheToCachePenalty)
	}
}

func TestInstrAdvancesClockSuperscalar(t *testing.T) {
	s := newSim(t)
	s.Instr(0, 1000)
	if c := s.Cycles(0); c != 500 {
		t.Errorf("1000 instructions took %d cycles, want 500", c)
	}
	s.Finalize()
	if got := s.CoreCounts(0).Get(counters.InstRetired); got != 1000 {
		t.Errorf("instructions = %d", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	s := newSim(t)
	s.AdvanceTo(0, 1000)
	if s.Cycles(0) != 1000 {
		t.Errorf("cycle = %d", s.Cycles(0))
	}
	s.AdvanceTo(0, 500) // must not move backwards
	if s.Cycles(0) != 1000 {
		t.Errorf("clock moved backwards to %d", s.Cycles(0))
	}
}

func TestStoresCountAndDirty(t *testing.T) {
	s := newSim(t)
	for i := uint64(0); i < 1024; i++ {
		s.Store(0, i*64, 0)
	}
	s.Finalize()
	c := s.CoreCounts(0)
	if c.Get(counters.AllStores) != 1024 {
		t.Errorf("stores = %d", c.Get(counters.AllStores))
	}
	if s.UncoreCounts(0).Get(counters.UncIMCWrite) == 0 {
		t.Error("allocating stores must produce IMC writes")
	}
}

func TestResetClearsEverything(t *testing.T) {
	s := newSim(t)
	for i := uint64(0); i < 4096; i++ {
		s.Load(0, i*64, 0, false)
	}
	s.Branch(0, 3, true)
	s.Finalize()
	if s.TotalCounts().Get(counters.AllLoads) == 0 {
		t.Fatal("precondition: counts populated")
	}
	s.Reset()
	total := s.TotalCounts()
	for id, v := range total {
		if v != 0 {
			t.Errorf("event %s = %d after Reset", counters.Def(counters.EventID(id)).Name, v)
		}
	}
	if s.Cycles(0) != 0 || s.MaxCycles() != 0 {
		t.Error("cycles must reset")
	}
	// After reset, previously cached lines must be gone (cold again).
	lat := s.Load(0, 0, 0, true)
	if lat < s.Machine().MemLatency {
		t.Errorf("post-reset load latency %d, want cold DRAM access", lat)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() counters.Counts {
		s := newSim(t)
		for i := uint64(0); i < 8192; i++ {
			s.Load(0, (i*97)%65536*64, 0, false)
			if i%7 == 0 {
				s.Branch(0, uint16(i%13), i%3 == 0)
			}
		}
		s.Finalize()
		return s.TotalCounts()
	}
	a, b := run(), run()
	for id := range a {
		if a[id] != b[id] {
			t.Fatalf("nondeterministic counter %s: %d vs %d",
				counters.Def(counters.EventID(id)).Name, a[id], b[id])
		}
	}
}

func TestLoadObserver(t *testing.T) {
	s := newSim(t)
	var got []uint64
	s.SetLoadObserver(func(core int, vaddr uint64, lat uint64) {
		got = append(got, lat)
	})
	s.Load(0, 0, 0, false)
	s.Load(0, 0, 0, false)
	if len(got) != 2 {
		t.Fatalf("observer saw %d loads", len(got))
	}
	if got[0] < got[1] {
		t.Errorf("first (cold) load %d must be slower than second (hot) %d", got[0], got[1])
	}
	s.SetLoadObserver(nil)
	s.Load(0, 0, 0, false)
	if len(got) != 2 {
		t.Error("cleared observer must not fire")
	}
}

func TestEnergyCounter(t *testing.T) {
	s := newSim(t)
	for i := uint64(0); i < 4096; i++ {
		s.Load(0, i*4096, 0, false)
	}
	s.Finalize()
	if s.UncoreCounts(0).Get(counters.UncPkgEnergy) == 0 {
		t.Error("package energy must be non-zero after work")
	}
}

func TestSTLBHit(t *testing.T) {
	s := newSim(t)
	// Touch 128 pages (exceeds the 64-entry DTLB, fits the STLB), then
	// touch them again: second pass misses DTLB but hits STLB.
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 128; i++ {
			s.Load(0, i*4096, 0, false)
		}
	}
	c := s.CoreCounts(0)
	if c.Get(counters.DTLBLoadMissSTLBHit) == 0 {
		t.Error("second pass must produce STLB hits")
	}
	if c.Get(counters.DTLBLoadMissWalk) < 128 {
		t.Errorf("first pass must walk for every page, got %d", c.Get(counters.DTLBLoadMissWalk))
	}
}

func TestCacheUnitBehaviour(t *testing.T) {
	c := newCache(4, 2)
	if c.lookup(100) >= 0 {
		t.Error("empty cache must miss")
	}
	c.insert(100, 0, -1)
	if c.lookup(100) < 0 {
		t.Error("inserted line must hit")
	}
	// Fill set 0 (addresses ≡ 0 mod 4) beyond capacity: LRU evicts.
	c.insert(104, 0, -1) // set 0
	c.lookup(104)        // make 104 most recent
	if _, ev := c.insert(108, 0, -1); !ev {
		t.Error("third line in a 2-way set must evict")
	}
	if c.lookup(100) >= 0 {
		t.Error("LRU line 100 must have been evicted")
	}
	if c.lookup(104) < 0 {
		t.Error("MRU line 104 must survive")
	}
	c.invalidate(104)
	if c.lookup(104) >= 0 {
		t.Error("invalidated line must miss")
	}
	if c.occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1", c.occupancy())
	}
}

func TestPrefetcherUnit(t *testing.T) {
	p := newStreamPrefetcher(64, 4096, 2)
	if got := p.observeMiss(10); got != nil {
		t.Errorf("first miss must not prefetch: %v", got)
	}
	if got := p.observeMiss(11); got != nil {
		t.Errorf("second miss must not prefetch yet: %v", got)
	}
	got := p.observeMiss(12)
	if len(got) != 2 || got[0] != 13 || got[1] != 14 {
		t.Errorf("confirmed ascending stream: %v, want [13 14]", got)
	}
	// Descending stream.
	p.reset()
	p.observeMiss(100)
	p.observeMiss(99)
	down := p.observeMiss(98)
	if len(down) != 2 || down[0] != 97 {
		t.Errorf("descending stream: %v", down)
	}
	// Page boundary: lines 62,63 of page 0 → next page must stop it.
	p.reset()
	p.observeMiss(61)
	p.observeMiss(62)
	edge := p.observeMiss(63)
	if len(edge) != 0 {
		t.Errorf("prefetch across page boundary: %v", edge)
	}
	// Random misses break the streak.
	p.reset()
	p.observeMiss(5)
	p.observeMiss(6)
	p.observeMiss(1000)
	if got := p.observeMiss(2000); got != nil {
		t.Errorf("broken stream must not prefetch: %v", got)
	}
}

func TestBranchPredictorUnit(t *testing.T) {
	var bp branchPredictor
	bp.reset()
	// Initial state is weakly not-taken.
	if bp.predictAndUpdate(0, true) {
		t.Error("first prediction must be not-taken")
	}
	// After training taken twice, prediction flips to taken.
	bp.predictAndUpdate(0, true)
	if !bp.predictAndUpdate(0, true) {
		t.Error("trained predictor must predict taken")
	}
	// Hysteresis: one not-taken does not flip a saturated counter.
	bp.predictAndUpdate(0, false)
	if !bp.predictAndUpdate(0, true) {
		t.Error("single contrary outcome must not flip a strong counter")
	}
}
