package memsim

import (
	"testing"

	"numaperf/internal/topology"
)

// Micro-benchmarks of the simulator hot paths: cost per simulated
// access for the canonical patterns. These bound how large a workload
// the experiment harness can afford.

func newBenchSim(b *testing.B) *Sim {
	b.Helper()
	s, err := New(topology.TwoSocket())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkLoadL1Hit measures the hit fast path.
func BenchmarkLoadL1Hit(b *testing.B) {
	s := newBenchSim(b)
	s.Load(0, 0, 0, false) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Load(0, 64, 0, false)
	}
}

// BenchmarkLoadSequential measures a streaming scan (prefetcher
// engaged, mixed hit levels).
func BenchmarkLoadSequential(b *testing.B) {
	s := newBenchSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Load(0, uint64(i)*4, 0, false)
	}
}

// BenchmarkLoadPageStrided measures the worst case: every access
// misses all caches and walks the TLB.
func BenchmarkLoadPageStrided(b *testing.B) {
	s := newBenchSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Load(0, uint64(i%65536)*4096, 0, false)
	}
}

// BenchmarkLoadRemote measures remote-DRAM accounting.
func BenchmarkLoadRemote(b *testing.B) {
	s := newBenchSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Load(0, uint64(i%65536)*4096, 1, false)
	}
}

// BenchmarkStore measures the store path.
func BenchmarkStore(b *testing.B) {
	s := newBenchSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Store(0, uint64(i)*4, 0)
	}
}

// BenchmarkBranch measures the predictor path.
func BenchmarkBranch(b *testing.B) {
	s := newBenchSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Branch(0, uint16(i%64), i%3 == 0)
	}
}

// BenchmarkReset measures per-run reset cost (reused engines pay this
// once per run).
func BenchmarkReset(b *testing.B) {
	s := newBenchSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
	}
}
