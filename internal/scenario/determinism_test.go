package scenario

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestLibraryDeterminism runs every checked-in library scenario twice
// with its own seed — the machine reports must be byte-identical — and
// once with a shifted seed, which must produce a different report.
// This is the replayable-report contract the DSL promises: same
// (scenario bytes, seed) in, same bytes out.
func TestLibraryDeterminism(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("scenario library has %d files, want at least one per injector", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			sc, err := Load(f)
			if err != nil {
				t.Fatal(err)
			}
			first := runMachine(t, f)
			second := runMachine(t, f)
			if !bytes.Equal(first, second) {
				t.Errorf("same seed produced different reports:\nfirst:  %s\nsecond: %s", first, second)
			}
			shifted, err := Run(mustLoad(t, f), RunOptions{Seed: sc.Seed + 1000})
			if err != nil {
				t.Fatal(err)
			}
			other, err := shifted.Machine()
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(first, other) {
				t.Error("shifted seed reproduced the original report byte-for-byte")
			}
		})
	}
}

func mustLoad(t *testing.T, path string) *Scenario {
	t.Helper()
	sc, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func runMachine(t *testing.T, path string) []byte {
	t.Helper()
	res, err := Run(mustLoad(t, path), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Machine()
	if err != nil {
		t.Fatal(err)
	}
	return m
}
