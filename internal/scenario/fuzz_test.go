package scenario

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseScenario hammers the full Parse path — UTF-8 gate, YAML
// subset parser, strict JSON bridge, registry validation — with two
// invariants:
//
//  1. Parse never panics, and every rejection is a typed error: a
//     *SyntaxError from the YAML layer or something that unwraps to
//     ErrInvalid from validation.
//  2. Anything Parse accepts survives a JSON round trip: re-encoding
//     the scenario and parsing it again (the "{" prefix routes it down
//     the JSON path) yields the same value, so the two input syntaxes
//     can never drift apart.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(validYAML))
	f.Add([]byte(validJSON))
	f.Add(replaceLine(validYAML, "action: run.exit", "action: run.explode"))
	f.Add(replaceLine(validYAML, "at: 1s", "at: banana"))
	f.Add(replaceLine(validYAML, "events:\n  - at: 0s",
		"events:\n  - action: run.panic\n    cell: p0/r0/b0\n  - action: run.panic\n    cell: p0/r0/b0\n  - at: 0s"))
	f.Add([]byte(deepBlockYAML(64)))
	f.Add([]byte("a: " + strings.Repeat("[", 64) + "1" + strings.Repeat("]", 64)))
	f.Add([]byte("name: x\nmode: fetch\nfetch: {workload: scenario-tiny, bounds: [4, 64]}\n"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		sc, err := Parse(raw)
		if err != nil {
			var syn *SyntaxError
			if !errors.As(err, &syn) && !errors.Is(err, ErrInvalid) {
				t.Fatalf("untyped rejection %T: %v", err, err)
			}
			return
		}
		if !utf8.Valid(raw) {
			t.Fatalf("accepted invalid UTF-8 input")
		}
		enc, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted scenario does not re-encode: %v", err)
		}
		again, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-encoded scenario rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("JSON round trip changed the scenario:\nfirst:  %+v\nsecond: %+v", sc, again)
		}
	})
}
