package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// The scenario loader accepts a deliberately small YAML subset — the
// shape Navarch-style scenario files actually use — so the repo stays
// dependency-free. Supported: two-space block indentation, mappings,
// sequences ("- item" and "- key: value" inline-mapping items), flow
// lists ("[a, b, c]"), single- and double-quoted strings, '#' comments,
// and plain scalars (bool, int, float, null, string). Anchors, tags,
// multi-document streams and block scalars are rejected with a parse
// error, never misread.

// maxYAMLDepth bounds block + flow nesting so adversarial input (the
// fuzz corpus's deep-nesting seed) fails with a typed error instead of
// exhausting the stack.
const maxYAMLDepth = 32

// SyntaxError reports where the YAML subset parser gave up.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("scenario: yaml line %d: %s", e.Line, e.Msg)
}

type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // content with indent and comment stripped
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses the subset into the same shapes encoding/json
// produces: map[string]any, []any, string, float64/int64, bool, nil.
func parseYAML(src []byte) (any, error) {
	p := &yamlParser{}
	for i, raw := range strings.Split(string(src), "\n") {
		num := i + 1
		line := strings.TrimRight(raw, " \r")
		stripped, err := stripComment(line, num)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(stripped) == "" {
			continue
		}
		indent := 0
		for indent < len(stripped) && stripped[indent] == ' ' {
			indent++
		}
		if strings.ContainsRune(stripped[:indent], '\t') || strings.HasPrefix(strings.TrimLeft(stripped, " "), "\t") {
			return nil, &SyntaxError{num, "tab indentation is not supported"}
		}
		text := stripped[indent:]
		if strings.HasPrefix(text, "\t") {
			return nil, &SyntaxError{num, "tab indentation is not supported"}
		}
		if text == "---" || strings.HasPrefix(text, "%") {
			return nil, &SyntaxError{num, "multi-document streams and directives are not supported"}
		}
		p.lines = append(p.lines, yamlLine{num: num, indent: indent, text: text})
	}
	if len(p.lines) == 0 {
		return nil, &SyntaxError{1, "empty document"}
	}
	v, err := p.parseBlock(p.lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, &SyntaxError{l.num, fmt.Sprintf("unexpected content at indent %d", l.indent)}
	}
	return v, nil
}

// stripComment removes a trailing "#" comment that is outside quotes
// and preceded by start-of-line or a space.
func stripComment(line string, num int) (string, error) {
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || line[i-1] == ' '):
			return line[:i], nil
		}
	}
	if quote != 0 {
		return "", &SyntaxError{num, "unterminated quoted string"}
	}
	return line, nil
}

func (p *yamlParser) parseBlock(indent, depth int) (any, error) {
	if depth > maxYAMLDepth {
		return nil, &SyntaxError{p.lines[p.pos].num, "nesting too deep"}
	}
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, &SyntaxError{l.num, fmt.Sprintf("expected indent %d, got %d", indent, l.indent)}
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSequence(indent, depth)
	}
	return p.parseMapping(indent, depth)
}

func (p *yamlParser) parseSequence(indent, depth int) (any, error) {
	seq := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, &SyntaxError{l.num, "unexpected deeper indentation in sequence"}
			}
			break
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			return nil, &SyntaxError{l.num, "expected sequence item"}
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		switch {
		case rest == "":
			// Block item on the following deeper lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		case isMappingStart(rest):
			// "- key: value" opens an inline mapping whose further keys
			// sit two columns past the dash. Rewrite the current line as
			// that first key and re-parse as a mapping block.
			p.lines[p.pos] = yamlLine{num: l.num, indent: indent + 2, text: rest}
			v, err := p.parseMapping(indent+2, depth+1)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		default:
			v, err := parseScalarOrFlow(rest, l.num, depth+1)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			p.pos++
		}
	}
	return seq, nil
}

func (p *yamlParser) parseMapping(indent, depth int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, &SyntaxError{l.num, "unexpected deeper indentation in mapping"}
			}
			break
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, &SyntaxError{l.num, "sequence item where a mapping key was expected"}
		}
		key, rest, err := splitKey(l.text, l.num)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, &SyntaxError{l.num, fmt.Sprintf("duplicate key %q", key)}
		}
		if rest == "" {
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				m[key] = nil
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		v, err := parseScalarOrFlow(rest, l.num, depth+1)
		if err != nil {
			return nil, err
		}
		m[key] = v
		p.pos++
	}
	return m, nil
}

// isMappingStart reports whether a sequence-item payload opens an
// inline mapping ("key: value" or "key:"), as opposed to being a plain
// scalar that merely contains a colon (a time like "12:30" does not,
// because the colon is not followed by a space or end of line).
func isMappingStart(s string) bool {
	if strings.HasPrefix(s, "[") || strings.HasPrefix(s, "{") || strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return i+1 == len(s) || s[i+1] == ' '
		}
	}
	return false
}

// splitKey splits "key: value" / "key:"; the key may be quoted.
func splitKey(s string, num int) (key, rest string, err error) {
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") {
		q := s[0]
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return "", "", &SyntaxError{num, "unterminated quoted key"}
		}
		key = s[1 : 1+end]
		s = s[2+end:]
		if !strings.HasPrefix(s, ":") {
			return "", "", &SyntaxError{num, "expected ':' after quoted key"}
		}
		return key, strings.TrimSpace(s[1:]), nil
	}
	for i := 0; i < len(s); i++ {
		if s[i] == ':' && (i+1 == len(s) || s[i+1] == ' ') {
			return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), nil
		}
	}
	return "", "", &SyntaxError{num, fmt.Sprintf("expected 'key: value', got %q", s)}
}

func parseScalarOrFlow(s string, num, depth int) (any, error) {
	if depth > maxYAMLDepth {
		return nil, &SyntaxError{num, "nesting too deep"}
	}
	switch {
	case strings.HasPrefix(s, "["):
		return parseFlowList(s, num, depth)
	case strings.HasPrefix(s, "{"):
		return parseFlowMap(s, num, depth)
	case strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "!"):
		return nil, &SyntaxError{num, "anchors, aliases and tags are not supported"}
	case s == "|" || s == ">" || strings.HasPrefix(s, "| ") || strings.HasPrefix(s, "> "):
		return nil, &SyntaxError{num, "block scalars are not supported"}
	}
	return parsePlainScalar(s, num)
}

func parsePlainScalar(s string, num int) (any, error) {
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") {
		q := s[0]
		if len(s) < 2 || s[len(s)-1] != q {
			return nil, &SyntaxError{num, "unterminated quoted string"}
		}
		body := s[1 : len(s)-1]
		if strings.ContainsRune(body, rune(q)) {
			return nil, &SyntaxError{num, "embedded quotes are not supported"}
		}
		return body, nil
	}
	switch s {
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	case "null", "~", "Null":
		return nil, nil
	}
	if n, err := strconv.ParseInt(s, 0, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// splitFlow splits a flow body on top-level commas.
func splitFlow(s string, num int) ([]string, error) {
	var parts []string
	var depth int
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
			if depth < 0 {
				return nil, &SyntaxError{num, "unbalanced brackets"}
			}
		case c == ',' && depth == 0:
			parts = append(parts, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if depth != 0 || quote != 0 {
		return nil, &SyntaxError{num, "unbalanced flow collection"}
	}
	if last := strings.TrimSpace(s[start:]); last != "" || len(parts) > 0 {
		parts = append(parts, last)
	}
	return parts, nil
}

func parseFlowList(s string, num, depth int) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, &SyntaxError{num, "unterminated flow list"}
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return []any{}, nil
	}
	parts, err := splitFlow(body, num)
	if err != nil {
		return nil, err
	}
	out := make([]any, 0, len(parts))
	for _, part := range parts {
		if part == "" {
			return nil, &SyntaxError{num, "empty flow list element"}
		}
		v, err := parseScalarOrFlow(part, num, depth+1)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFlowMap(s string, num, depth int) (any, error) {
	if !strings.HasSuffix(s, "}") {
		return nil, &SyntaxError{num, "unterminated flow mapping"}
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	out := map[string]any{}
	if body == "" {
		return out, nil
	}
	parts, err := splitFlow(body, num)
	if err != nil {
		return nil, err
	}
	for _, part := range parts {
		key, rest, err := splitKey(part, num)
		if err != nil {
			return nil, err
		}
		if _, dup := out[key]; dup {
			return nil, &SyntaxError{num, fmt.Sprintf("duplicate key %q", key)}
		}
		v, err := parseScalarOrFlow(rest, num, depth+1)
		if err != nil {
			return nil, err
		}
		out[key] = v
	}
	return out, nil
}
