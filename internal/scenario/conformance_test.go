package scenario

import (
	"bytes"
	"encoding/json"
	"net"
	"path/filepath"
	"testing"
	"time"

	"numaperf/internal/campaign"
	"numaperf/internal/counters"
	"numaperf/internal/evsel"
	"numaperf/internal/exec"
	"numaperf/internal/faultdata"
	"numaperf/internal/faultnet"
	"numaperf/internal/faultperf"
	"numaperf/internal/faultrun"
	"numaperf/internal/fleet"
	"numaperf/internal/memhist"
	"numaperf/internal/perf"
	"numaperf/internal/topology"
	"numaperf/internal/workloads"
)

// The conformance suite pins the DSL's compilation contract, one test
// per fault injector: a declarative action must behave exactly like
// the hand-built Script it compiles to. Each hand side below uses the
// raw injector API directly — never the engine's helpers — so a
// compilation drift in engine.go fails here.

func loadScenario(t *testing.T, name string) *Scenario {
	t.Helper()
	sc, err := Load(filepath.Join("..", "..", "scenarios", name+".yaml"))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func runScenario(t *testing.T, sc *Scenario, opts RunOptions) *Result {
	t.Helper()
	res, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("scenario failed %d assertions:\n%s", res.Failed, res.Summary())
	}
	return res
}

// findOutcome returns the first outcome record for stage.
func findOutcome(t *testing.T, res *Result, stage string) any {
	t.Helper()
	for _, rec := range res.Records {
		if rec.Kind != "outcome" {
			continue
		}
		switch p := rec.Payload.(type) {
		case fetchOutcomeRec:
			if p.Stage == stage {
				return p
			}
		case campaignOutcomeRec:
			if p.Stage == stage {
				return p
			}
		case analyzeOutcomeRec:
			if p.Stage == stage {
				return p
			}
		case collectOutcomeRec:
			if p.Stage == stage {
				return p
			}
		case fleetOutcomeRec:
			if p.Stage == stage {
				return p
			}
		}
	}
	t.Fatalf("report has no %s outcome record", stage)
	return nil
}

// TestConformanceNet: net.truncate_response ≡ a hand-scripted
// faultnet.ConnScript truncating the same response byte, behind the
// same retrying fetch.
func TestConformanceNet(t *testing.T) {
	sc := loadScenario(t, "net-truncated-response")
	res := runScenario(t, sc, RunOptions{})
	got := findOutcome(t, res, "fetch").(fetchOutcomeRec)

	// Hand side: raw faultnet wrap around a real probe server.
	ensureWorkloads()
	seed := sc.Seed
	req := memhist.ProbeRequest{
		Workload: sc.Fetch.Workload,
		Machine:  sc.Fetch.Machine,
		Threads:  sc.Fetch.Threads,
		Bounds:   append([]uint64(nil), sc.Fetch.Bounds...),
		Reps:     sc.Fetch.Reps,
		Seed:     seed,
	}
	hlen, err := helloFrameLen()
	if err != nil {
		t.Fatal(err)
	}
	var truncateAt int64
	for _, ev := range sc.Events {
		if ev.Action == "net.truncate_response" {
			truncateAt = ev.Offset + hlen
		}
	}
	if truncateAt == hlen {
		t.Fatal("scenario lost its net.truncate_response event")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := faultnet.Wrap(ln, faultnet.Options{
		Seed: seed,
		Script: func(i int) *faultnet.ConnScript {
			if i == 0 {
				return &faultnet.ConnScript{TruncateWriteAt: truncateAt}
			}
			return nil
		},
	})
	srv := &memhist.ProbeServer{MaxConns: 8}
	done := make(chan struct{})
	go func() { _ = srv.Serve(fl); close(done) }()
	defer func() { ln.Close(); <-done }()

	h, err := memhist.FetchRemoteWith(ln.Addr().String(), req, memhist.FetchOptions{
		Timeout: 30 * time.Second,
		Retries: sc.Fetch.Retries,
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("hand-built fetch failed: %v", err)
	}
	if got.Origin != h.Origin {
		t.Errorf("origin: scenario=%s hand=%s", got.Origin, h.Origin)
	}
	hj, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Histogram, hj) {
		t.Errorf("histograms differ:\nscenario: %s\nhand:     %s", got.Histogram, hj)
	}
}

// handCampaign runs the campaign spec of sc through campaign.Runner
// directly, with wrap (nil for fault-free) as the middleware.
func handCampaign(t *testing.T, sc *Scenario, wrap campaign.Middleware, workers int) *campaign.Report {
	t.Helper()
	ensureWorkloads()
	wl, ok := workloads.ByName(sc.Campaign.Workload)
	if !ok {
		t.Fatalf("unknown workload %s", sc.Campaign.Workload)
	}
	mach, ok := topology.ByName(sc.Campaign.Machine)
	if !ok {
		t.Fatalf("unknown machine %s", sc.Campaign.Machine)
	}
	var evIDs []counters.EventID
	for _, name := range sc.Campaign.Events {
		id, ok := counters.Lookup(name)
		if !ok {
			t.Fatalf("unknown counter %s", name)
		}
		evIDs = append(evIDs, id)
	}
	threads := sc.Campaign.Threads
	if len(threads) == 0 {
		threads = []int{1}
	}
	var points []campaign.Point
	for _, th := range threads {
		th := th
		points = append(points, campaign.Point{
			Param: float64(th),
			Mk: func(cellSeed int64) (*exec.Engine, func(*exec.Thread), error) {
				e, err := exec.NewEngine(exec.Config{Machine: mach, Threads: th, Seed: cellSeed, Chunk: 1024})
				if err != nil {
					return nil, nil, err
				}
				return e, wl.Body(), nil
			},
		})
	}
	reps := sc.Campaign.Reps
	if reps == 0 {
		reps = 3
	}
	r := campaign.Runner{
		Spec: campaign.Spec{ParamName: "threads", Points: points, Events: evIDs, Reps: reps, Mode: perf.Batched, Seed: sc.Seed},
		Opts: campaign.Options{
			RunTimeout:  10 * time.Second,
			MaxRetries:  sc.Campaign.MaxRetries,
			KeepGoing:   sc.Campaign.KeepGoing,
			Concurrency: workers,
			Wrap:        wrap,
			Sleep:       func(time.Duration) {},
		},
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatalf("hand-built campaign: %v", err)
	}
	return rep
}

// comparePoints checks the scenario's recorded per-point means against
// a hand-built campaign report.
func comparePoints(t *testing.T, sc *Scenario, got campaignOutcomeRec, rep *campaign.Report) {
	t.Helper()
	if len(got.Points) != len(rep.Points) {
		t.Fatalf("points: scenario=%d hand=%d", len(got.Points), len(rep.Points))
	}
	for i, pr := range rep.Points {
		sp := got.Points[i]
		if sp.Param != pr.Param {
			t.Errorf("point %d param: scenario=%g hand=%g", i, sp.Param, pr.Param)
		}
		byEvent := map[string]eventMean{}
		for _, em := range sp.Events {
			byEvent[em.Event] = em
		}
		for _, name := range sc.Campaign.Events {
			id, _ := counters.Lookup(name)
			if len(pr.M.Samples[id]) == 0 {
				continue
			}
			em, ok := byEvent[name]
			if !ok {
				t.Errorf("point %d: scenario dropped event %s", i, name)
				continue
			}
			if want := pr.M.Mean(id); !em.NonFinite && em.Mean != want {
				t.Errorf("point %d %s: scenario mean %g, hand mean %g", i, name, em.Mean, want)
			}
		}
	}
}

// TestConformanceRun: run.exit ≡ a hand-built faultrun script keyed on
// the same cell, and the report must not move between 1 and 4 campaign
// workers.
func TestConformanceRun(t *testing.T) {
	sc := loadScenario(t, "run-transient-exit")

	var machines [][]byte
	for _, workers := range []int{1, 4} {
		res := runScenario(t, sc, RunOptions{Workers: workers})
		m, err := res.Machine()
		if err != nil {
			t.Fatal(err)
		}
		machines = append(machines, m)

		script := faultrun.NewScript()
		for _, ev := range sc.Events {
			if ev.Action == "run.exit" {
				script.On(ev.Cell, faultrun.Fault{Kind: faultrun.Exit, Times: ev.Times, ExitCode: ev.ExitCode})
			}
		}
		rep := handCampaign(t, sc, script.Wrap, workers)
		script.Release()

		got := findOutcome(t, res, "campaign").(campaignOutcomeRec)
		if got.Complete != rep.Complete() || got.Cells != rep.Cells || got.Retried != rep.Retried {
			t.Errorf("workers=%d: scenario (complete=%v cells=%d retried=%d) vs hand (complete=%v cells=%d retried=%d)",
				workers, got.Complete, got.Cells, got.Retried, rep.Complete(), rep.Cells, rep.Retried)
		}
		comparePoints(t, sc, got, rep)
	}
	if !bytes.Equal(machines[0], machines[1]) {
		t.Errorf("machine report moved between 1 and 4 workers:\n1: %s\n4: %s", machines[0], machines[1])
	}
}

// TestConformanceData: data.poison_samples ≡ a hand-built faultdata
// injector poisoning the same measurement with the same seed.
func TestConformanceData(t *testing.T) {
	sc := loadScenario(t, "data-poisoned-compare")
	res := runScenario(t, sc, RunOptions{})
	got := findOutcome(t, res, "analyze").(analyzeOutcomeRec)

	rep := handCampaign(t, sc, nil, 0)
	var frac float64
	for _, ev := range sc.Events {
		if ev.Action == "data.poison_samples" {
			frac = ev.Frac
		}
	}
	if frac == 0 {
		t.Fatal("scenario lost its data.poison_samples event")
	}
	base := rep.Points[0].M
	faulted := faultdata.New(sc.Seed).PoisonSamples(base, frac)
	cmp, err := evsel.Compare(base, faulted)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded != cmp.Degraded() || got.HardDegraded != cmp.HardDegraded() {
		t.Errorf("scenario (degraded=%v hard=%v) vs hand (degraded=%v hard=%v)",
			got.Degraded, got.HardDegraded, cmp.Degraded(), cmp.HardDegraded())
	}
	var diag []string
	for _, row := range cmp.Rows {
		if row.Degraded() {
			diag = append(diag, row.Name)
		}
	}
	if len(diag) != len(got.DiagEvents) {
		t.Errorf("diag events: scenario=%v hand=%v", got.DiagEvents, diag)
	}
}

// TestConformancePerf: perf.throttle_storm ≡ a hand-built faultperf
// script armed on the same cycle window (the timeline durations
// converted at the machine clock by hand).
func TestConformancePerf(t *testing.T) {
	sc := loadScenario(t, "perf-throttle-storm")
	res := runScenario(t, sc, RunOptions{})
	got := findOutcome(t, res, "collect").(collectOutcomeRec)

	ensureWorkloads()
	wl, ok := workloads.ByName(sc.Collect.Workload)
	if !ok {
		t.Fatalf("unknown workload %s", sc.Collect.Workload)
	}
	mach, ok := topology.ByName(sc.Collect.Machine)
	if !ok {
		t.Fatalf("unknown machine %s", sc.Collect.Machine)
	}
	e, err := exec.NewEngine(exec.Config{Machine: mach, Threads: 1, Seed: sc.Seed, Chunk: sc.Collect.Chunk})
	if err != nil {
		t.Fatal(err)
	}
	script := faultperf.NewScript()
	for _, ev := range sc.Events {
		if ev.Action == "perf.throttle_storm" {
			from := uint64(ev.At.D().Seconds() * float64(mach.FreqHz))
			to := uint64(ev.Until.D().Seconds() * float64(mach.FreqHz))
			script.ThrottleStorm(from, to)
		}
	}
	h, err := memhist.Collect(e, wl.Body(), memhist.Options{
		Bounds:      sc.Collect.Bounds,
		SliceCycles: sc.Collect.SliceCycles,
		Sampler:     perf.SamplerOptions{Disruptor: script},
	})
	if err != nil {
		t.Fatal(err)
	}
	hj, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Histogram, hj) {
		t.Errorf("histograms differ:\nscenario: %s\nhand:     %s", got.Histogram, hj)
	}
	if got.ThrottlesFired != script.ThrottlesFired() {
		t.Errorf("throttles: scenario=%d hand=%d", got.ThrottlesFired, script.ThrottlesFired())
	}
}

// TestConformanceFleet: a fleet campaign's gathered histogram ≡ the
// same cells handled locally and merged by hand — the probe crash in
// the scenario must not shift a byte.
func TestConformanceFleet(t *testing.T) {
	sc := loadScenario(t, "fleet-probe-crash")
	res := runScenario(t, sc, RunOptions{})
	got := findOutcome(t, res, "fleet").(fleetOutcomeRec)
	if !got.Complete {
		t.Fatal("fleet scenario did not complete")
	}

	ensureWorkloads()
	spec := fleet.Spec{
		Workload: sc.Fleet.Campaign.Workload,
		Machine:  sc.Fleet.Campaign.Machine,
		Bounds:   append([]uint64(nil), sc.Fleet.Campaign.Bounds...),
		Cells:    sc.Fleet.Campaign.Cells,
		Seed:     sc.Seed,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	var hs []*memhist.Histogram
	for i := 0; i < spec.Cells; i++ {
		h, err := memhist.HandleRequest(spec.CellRequest(i))
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		hs = append(hs, h)
	}
	ref, err := memhist.MergeHistograms(hs)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Histogram, rj) {
		t.Errorf("histograms differ:\nscenario: %s\nhand:     %s", got.Histogram, rj)
	}
}
