package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"numaperf/internal/journal"
)

// ReportVersion is the run-report format version, carried in the
// header record and checked by journal.Parse on replay.
const ReportVersion = 1

// Record is one line of the machine-readable run report: a kind plus
// its payload, framed on the internal/journal CRC format when
// rendered. Every payload field is deterministic for a given (scenario
// bytes, seed) pair — scheduling-dependent accounting is deliberately
// excluded, the same split internal/fleet draws for its Report.
type Record struct {
	Kind    string
	Payload any
}

type headerRec struct {
	Kind string `json:"kind"`
	V    int    `json:"v"`
	Name string `json:"name"`
	Mode string `json:"mode"`
	Seed int64  `json:"seed"`
}

// FleetProbe records one resolved fleet member: its ID, the generator
// template that stamped it (empty for explicit probes) and the chaos
// behaviours the seeded rates assigned, in a fixed order.
type FleetProbe struct {
	ID       string   `json:"id"`
	Template string   `json:"template,omitempty"`
	Chaos    []string `json:"chaos,omitempty"`
}

type fleetRec struct {
	Kind   string       `json:"kind"`
	Probes []FleetProbe `json:"probes"`
}

type faultRec struct {
	Kind  string `json:"kind"`
	At    string `json:"at"`
	Event Event  `json:"event"`
}

type assertRec struct {
	Kind   string `json:"kind"`
	At     string `json:"at"`
	Action string `json:"action"`
	Target string `json:"target,omitempty"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

type fetchOutcomeRec struct {
	Kind         string          `json:"kind"`
	Stage        string          `json:"stage"`
	Origin       string          `json:"origin"`
	MatchesLocal bool            `json:"matches_local"`
	Histogram    json.RawMessage `json:"histogram"`
}

type eventMean struct {
	Event   string  `json:"event"`
	Mean    float64 `json:"mean"`
	Samples int     `json:"samples"`
	// NonFinite flags a NaN/Inf mean (faultdata corruption can produce
	// one); the numeric field is zeroed because JSON cannot carry it.
	NonFinite bool `json:"non_finite,omitempty"`
}

type pointOutcome struct {
	Param  float64     `json:"param"`
	Events []eventMean `json:"events"`
}

type campaignOutcomeRec struct {
	Kind        string         `json:"kind"`
	Stage       string         `json:"stage"`
	Complete    bool           `json:"complete"`
	Cells       int            `json:"cells"`
	Retried     int            `json:"retried"`
	Gaps        []string       `json:"gaps,omitempty"`
	Quarantined []string       `json:"quarantined,omitempty"`
	Points      []pointOutcome `json:"points"`
}

type analyzeOutcomeRec struct {
	Kind         string   `json:"kind"`
	Stage        string   `json:"stage"`
	Degraded     bool     `json:"degraded"`
	HardDegraded bool     `json:"hard_degraded"`
	DiagEvents   []string `json:"diag_events,omitempty"`
}

type collectOutcomeRec struct {
	Kind           string          `json:"kind"`
	Stage          string          `json:"stage"`
	Coverage       float64         `json:"coverage"`
	DutyCycle      float64         `json:"duty_cycle"`
	RecordsDropped int             `json:"records_dropped"`
	ThrottlesFired int             `json:"throttles_fired"`
	SlicesStarved  int             `json:"slices_starved"`
	DrainsStalled  int             `json:"drains_stalled"`
	Histogram      json.RawMessage `json:"histogram"`
}

// overloadOutcomeRec records the deterministic outcome of a fetch-mode
// overload storm: the exact shed tally the engine forced, whether the
// queued fetch was served at brownout fidelity with the honest render
// marker, and the reduced-fidelity histogram itself.
type overloadOutcomeRec struct {
	Kind           string          `json:"kind"`
	Stage          string          `json:"stage"`
	Sheds          int             `json:"sheds"`
	BrownoutServed bool            `json:"brownout_served"`
	Marked         bool            `json:"marked"`
	Histogram      json.RawMessage `json:"histogram"`
}

type fleetOutcomeRec struct {
	Kind        string   `json:"kind"`
	Stage       string   `json:"stage"`
	Complete    bool     `json:"complete"`
	Cells       int      `json:"cells"`
	Completed   int      `json:"completed"`
	Gaps        []int    `json:"gaps,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`
	Replayed    int      `json:"replayed,omitempty"`
	Truncated   bool     `json:"truncated,omitempty"`
	// JournalDegraded reports that a disk fault cost the run its crash
	// journal (results intact, resume protection honestly lost);
	// JournalVerify is the offline fsck verdict over what the campaign
	// left on disk ("clean", "torn-tail", …). Both are deterministic —
	// the fault's error text, which may carry scratch paths, is not and
	// never enters the report.
	JournalDegraded bool   `json:"journal_degraded,omitempty"`
	JournalVerify   string `json:"journal_verify,omitempty"`
	// AssignmentDependent marks a scenario with per-probe PMU weather:
	// which cells met the weather depends on cell placement, so the
	// merged histogram is not a pure function of the scenario and is
	// excluded from the report.
	AssignmentDependent bool            `json:"assignment_dependent,omitempty"`
	Histogram           json.RawMessage `json:"histogram,omitempty"`
}

type verdictRec struct {
	Kind   string `json:"kind"`
	OK     bool   `json:"ok"`
	Passed int    `json:"passed"`
	Failed int    `json:"failed"`
}

// Result is a finished scenario run: the deterministic record list
// plus the assertion tally.
type Result struct {
	Scenario *Scenario
	Seed     int64
	Records  []Record
	Passed   int
	Failed   int
}

// OK reports whether every assertion held.
func (r *Result) OK() bool { return r.Failed == 0 }

// Machine renders the report as CRC-framed JSON lines in the
// internal/journal format. Byte-identical for identical (scenario,
// seed) inputs.
func (r *Result) Machine() ([]byte, error) {
	var sb strings.Builder
	for _, rec := range r.Records {
		payload, err := json.Marshal(rec.Payload)
		if err != nil {
			return nil, fmt.Errorf("scenario: marshal %s record: %w", rec.Kind, err)
		}
		sb.Write(journal.Frame(payload))
	}
	return []byte(sb.String()), nil
}

// WriteReport writes the machine report to path.
func (r *Result) WriteReport(path string) error {
	raw, err := r.Machine()
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// Summary renders the human-readable run report: the same records, one
// line each, in timeline order. Deterministic for identical inputs.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %s (mode %s, seed %d)\n", r.Scenario.Name, r.Scenario.Mode, r.Seed)
	if r.Scenario.Description != "" {
		fmt.Fprintf(&sb, "  %s\n", r.Scenario.Description)
	}
	for _, rec := range r.Records {
		switch p := rec.Payload.(type) {
		case fleetRec:
			for _, pr := range p.Probes {
				line := "fleet: probe " + pr.ID
				if pr.Template != "" {
					line += " (template " + pr.Template + ")"
				}
				if len(pr.Chaos) > 0 {
					line += " chaos=" + strings.Join(pr.Chaos, ",")
				}
				sb.WriteString("  " + line + "\n")
			}
		case faultRec:
			fmt.Fprintf(&sb, "  %8s  fault   %s%s\n", p.At, p.Event.Action, faultDetail(p.Event))
		case assertRec:
			verdict := "ok"
			if !p.OK {
				verdict = "FAIL"
			}
			fmt.Fprintf(&sb, "  %8s  assert  %s: %s (%s)\n", p.At, p.Action, verdict, p.Detail)
		case fetchOutcomeRec:
			fmt.Fprintf(&sb, "  outcome fetch: origin=%s matches_local=%v\n", p.Origin, p.MatchesLocal)
		case overloadOutcomeRec:
			fmt.Fprintf(&sb, "  outcome overload: sheds=%d brownout_served=%v marked=%v\n",
				p.Sheds, p.BrownoutServed, p.Marked)
		case campaignOutcomeRec:
			fmt.Fprintf(&sb, "  outcome campaign: cells=%d retried=%d gaps=%d quarantined=%d complete=%v\n",
				p.Cells, p.Retried, len(p.Gaps), len(p.Quarantined), p.Complete)
		case analyzeOutcomeRec:
			fmt.Fprintf(&sb, "  outcome analyze: degraded=%v hard=%v diags=%s\n",
				p.Degraded, p.HardDegraded, strings.Join(p.DiagEvents, ","))
		case collectOutcomeRec:
			fmt.Fprintf(&sb, "  outcome collect: coverage=%.4f duty=%.4f dropped=%d throttles=%d starved=%d stalls=%d\n",
				p.Coverage, p.DutyCycle, p.RecordsDropped, p.ThrottlesFired, p.SlicesStarved, p.DrainsStalled)
		case fleetOutcomeRec:
			fmt.Fprintf(&sb, "  outcome fleet: cells=%d completed=%d gaps=%d quarantined=%d",
				p.Cells, p.Completed, len(p.Gaps), len(p.Quarantined))
			if p.Replayed > 0 {
				fmt.Fprintf(&sb, " replayed=%d", p.Replayed)
			}
			if p.Truncated {
				sb.WriteString(" truncated")
			}
			if p.JournalVerify != "" {
				fmt.Fprintf(&sb, " journal=%s", p.JournalVerify)
			}
			if p.JournalDegraded {
				sb.WriteString(" JOURNAL DEGRADED")
			}
			if p.AssignmentDependent {
				sb.WriteString(" (histogram assignment-dependent, excluded)")
			}
			sb.WriteString("\n")
		case verdictRec:
			verdict := "PASS"
			if !p.OK {
				verdict = "FAIL"
			}
			fmt.Fprintf(&sb, "verdict: %s (%d passed, %d failed)\n", verdict, p.Passed, p.Failed)
		}
	}
	return sb.String()
}

// faultDetail renders the parameters a fault event actually set.
func faultDetail(ev Event) string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if ev.Target != "" {
		add("target=%s", ev.Target)
	}
	if ev.Cell != "" {
		add("cell=%s", ev.Cell)
	}
	if ev.Conn != 0 {
		add("conn=%d", ev.Conn)
	}
	if ev.Offset != 0 {
		add("offset=%d", ev.Offset)
	}
	if ev.Count != 0 {
		add("count=%d", ev.Count)
	}
	if ev.Times != 0 {
		add("times=%d", ev.Times)
	}
	if ev.ExitCode != 0 {
		add("exit_code=%d", ev.ExitCode)
	}
	if ev.Event != "" {
		add("event=%s", ev.Event)
	}
	if ev.NaN {
		add("nan")
	}
	if ev.Delay != 0 {
		add("delay=%s", ev.Delay)
	}
	if ev.Frac != 0 {
		add("frac=%g", ev.Frac)
	}
	if ev.Factor != 0 {
		add("factor=%g", ev.Factor)
	}
	if ev.Value != 0 {
		add("value=%g", ev.Value)
	}
	if ev.Until != 0 {
		add("until=%s", ev.Until)
	}
	if ev.Threshold != 0 {
		add("threshold=%d", ev.Threshold)
	}
	if ev.Slices != 0 {
		add("slices=%d", ev.Slices)
	}
	if ev.N != 0 {
		add("n=%d", ev.N)
	}
	if ev.Seq != 0 {
		add("seq=%d", ev.Seq)
	}
	if ev.StayDown {
		add("stay_down")
	}
	if ev.OnDispatch != 0 {
		add("on_dispatch=%d", ev.OnDispatch)
	}
	if ev.Window != "" {
		add("window=%s", ev.Window)
	}
	if ev.Op != "" {
		add("op=%s", ev.Op)
	}
	if ev.RetryAfter != 0 {
		add("retry_after=%s", ev.RetryAfter)
	}
	if len(parts) == 0 {
		return ""
	}
	return " " + strings.Join(parts, " ")
}

// ParseReport loads a machine report back into journal records — the
// replay side of the byte-identical contract.
func ParseReport(raw []byte) (*journal.State, error) {
	return journal.Parse(raw, ReportVersion)
}
