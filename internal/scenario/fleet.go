package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"numaperf/internal/exec"
	"numaperf/internal/faultdisk"
	"numaperf/internal/faultfleet"
	"numaperf/internal/faultperf"
	"numaperf/internal/fleet"
	"numaperf/internal/journal"
	"numaperf/internal/memhist"
	"numaperf/internal/perf"
)

// The fleet stage runs a real coordinator plus in-process probe agents
// over loopback TCP, mirroring the faultfleet chaos harness: tight
// supervision windows (10ms beacons, 120/240ms suspect/dead) so
// failure transitions happen in test time, with ~12 beacon periods of
// slack so loaded runners never trip them spuriously. The report keeps
// only the deterministic split of fleet.Report — the merged histogram,
// gap cell indexes and quarantined probe IDs — never the dispatch
// accounting that varies with goroutine scheduling.

// probePlan is one resolved fleet member: explicit or generated, with
// its compiled fault script and any per-probe PMU weather.
type probePlan struct {
	id       string
	template string
	chaos    []string
	script   *faultfleet.Script
	perf     []Event
}

func (p *probePlan) ensureScript() *faultfleet.Script {
	if p.script == nil {
		p.script = faultfleet.New()
	}
	return p.script
}

// resolveFleet turns the probe roster, generator templates and chaos
// rates into concrete plans. Every draw comes from one rng seeded with
// the scenario seed, consumed in a fixed order (template draws in
// generated-probe order, then the three chaos draws per probe in
// roster order), so the resolved fleet is a pure function of
// (scenario, seed).
func resolveFleet(fs *FleetSpec, seed int64) []*probePlan {
	var plans []*probePlan
	for _, id := range fs.Probes {
		plans = append(plans, &probePlan{id: id})
	}
	rng := rand.New(rand.NewSource(seed))
	if fs.Gen != nil {
		prefix := fs.Gen.Prefix
		if prefix == "" {
			prefix = "gen"
		}
		total := 0
		for _, t := range fs.Gen.Templates {
			total += t.Weight
		}
		for i := 0; i < fs.Gen.Count; i++ {
			draw := rng.Intn(total)
			var tmpl Template
			for _, t := range fs.Gen.Templates {
				if draw < t.Weight {
					tmpl = t
					break
				}
				draw -= t.Weight
			}
			p := &probePlan{id: fmt.Sprintf("%s-%d", prefix, i), template: tmpl.Name}
			applyTemplate(p, tmpl)
			plans = append(plans, p)
		}
	}
	if fs.Chaos != nil {
		for _, p := range plans {
			if rng.Float64() < fs.Chaos.CrashRate {
				p.chaos = append(p.chaos, "crash")
				p.ensureScript().CrashOnRequest(1)
			}
			if rng.Float64() < fs.Chaos.SilenceRate {
				p.chaos = append(p.chaos, "silence")
				p.ensureScript().SilenceHeartbeatsFrom(3)
			}
			if rng.Float64() < fs.Chaos.DelayRate {
				p.chaos = append(p.chaos, "delay")
				p.ensureScript().DelayEveryRequest(15 * time.Millisecond)
			}
		}
	}
	return plans
}

func applyTemplate(p *probePlan, t Template) {
	switch {
	case t.Flap:
		p.ensureScript().CrashAlways()
	case t.CrashOnRequest > 0 && t.StayDown:
		p.ensureScript().CrashOnRequestStayDown(t.CrashOnRequest)
	case t.CrashOnRequest > 0:
		p.ensureScript().CrashOnRequest(t.CrashOnRequest)
	}
	if t.SilenceFrom > 0 {
		p.ensureScript().SilenceHeartbeatsFrom(t.SilenceFrom)
	}
	if t.DelayRequests > 0 {
		p.ensureScript().DelayEveryRequest(t.DelayRequests.D())
	}
}

// armFleetEvent compiles one timeline fleet.* fault onto its target's
// script.
func armFleetEvent(p *probePlan, ev Event) {
	s := p.ensureScript()
	switch ev.Action {
	case "fleet.refuse_connects":
		s.RefuseFirstConnects(ev.Count)
	case "fleet.refuse_reconnects":
		s.RefuseReconnects()
	case "fleet.drop_heartbeat":
		s.DropHeartbeat(ev.Seq)
	case "fleet.silence_heartbeats":
		s.SilenceHeartbeatsFrom(ev.Seq)
	case "fleet.delay_request":
		s.DelayRequest(ev.N, ev.Delay.D())
	case "fleet.delay_every_request":
		s.DelayEveryRequest(ev.Delay.D())
	case "fleet.crash_request":
		if ev.StayDown {
			s.CrashOnRequestStayDown(ev.N)
		} else {
			s.CrashOnRequest(ev.N)
		}
	case "fleet.flap":
		s.CrashAlways()
	case "fleet.overload_answers":
		s.OverloadRequests(ev.N, ev.Count, ev.RetryAfter.D())
	}
}

// perfHandle mirrors memhist.HandleRequest with PMU weather compiled
// into the sampler: a fresh faultperf script per request, so every
// serve of a cell — first dispatch, re-dispatch, or the local
// reference — meets identical weather and the byte-identity contract
// survives.
func perfHandle(events []Event) func(memhist.ProbeRequest) (*memhist.Histogram, error) {
	return func(req memhist.ProbeRequest) (*memhist.Histogram, error) {
		if err := req.Validate(); err != nil {
			return nil, err
		}
		wl, err := lookupWorkload(req.Workload)
		if err != nil {
			return nil, err
		}
		mach, err := lookupMachine(req.Machine)
		if err != nil {
			return nil, err
		}
		threads := req.Threads
		if threads <= 0 {
			threads = 1
		}
		e, err := exec.NewEngine(exec.Config{Machine: mach, Threads: threads, Seed: req.Seed})
		if err != nil {
			return nil, err
		}
		if req.Exact {
			h, err := memhist.Exact(e, wl.Body(), req.Bounds, 1)
			if err != nil {
				return nil, err
			}
			h.Source = wl.Name()
			h.Origin = memhist.OriginLocal
			return h, nil
		}
		script := faultperf.NewScript()
		for _, ev := range events {
			armPerf(script, ev, mach)
		}
		h, err := memhist.Collect(e, wl.Body(), memhist.Options{
			Bounds:      req.Bounds,
			SliceCycles: req.SliceCycles,
			Reps:        req.Reps,
			Adaptive:    req.Adaptive,
			Sampler:     perf.SamplerOptions{Disruptor: script},
		})
		if err != nil {
			return nil, err
		}
		h.Source = wl.Name()
		h.Origin = memhist.OriginLocal
		return h, nil
	}
}

func fleetOptions(fs *FleetSpec, opts RunOptions) fleet.Options {
	o := fleet.Options{
		SuspectAfter: 120 * time.Millisecond,
		DeadAfter:    240 * time.Millisecond,
		ProbeStrikes: 3,
		CellTimeout:  5 * time.Second,
		MaxRetries:   8,
		KeepGoing:    fs.KeepGoing,
		NoProbeGrace: 400 * time.Millisecond,
		Tick:         5 * time.Millisecond,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   15 * time.Millisecond,
		BackoffSeed:  7,
		Logf:         opts.Logf,
	}
	if fs.SuspectAfter > 0 {
		o.SuspectAfter = fs.SuspectAfter.D()
	}
	if fs.DeadAfter > 0 {
		o.DeadAfter = fs.DeadAfter.D()
	}
	if fs.ProbeStrikes > 0 {
		o.ProbeStrikes = fs.ProbeStrikes
	}
	if fs.CellTimeout > 0 {
		o.CellTimeout = fs.CellTimeout.D()
	}
	if fs.MaxRetries > 0 {
		o.MaxRetries = fs.MaxRetries
	}
	return o
}

// agentHarness owns the probe agents' lifetimes.
type agentHarness struct {
	cancel context.CancelFunc
	done   []chan struct{}
}

func (h *agentHarness) stop() {
	h.cancel()
	for _, d := range h.done {
		select {
		case <-d:
		case <-time.After(10 * time.Second):
			return
		}
	}
}

func startAgents(addr string, fs *FleetSpec, plans []*probePlan, uniformPerf []Event, opts RunOptions) *agentHarness {
	ctx, cancel := context.WithCancel(context.Background())
	h := &agentHarness{cancel: cancel}
	hb := 10 * time.Millisecond
	if fs.Heartbeat > 0 {
		hb = fs.Heartbeat.D()
	}
	for _, p := range plans {
		var handle func(memhist.ProbeRequest) (*memhist.Histogram, error)
		if len(p.perf) > 0 {
			handle = perfHandle(p.perf)
		} else if len(uniformPerf) > 0 {
			handle = perfHandle(uniformPerf)
		}
		a := &fleet.ProbeAgent{
			ID:                p.id,
			Coordinator:       addr,
			HeartbeatInterval: hb,
			Handle:            handle,
			BackoffBase:       5 * time.Millisecond,
			BackoffMax:        15 * time.Millisecond,
			BackoffSeed:       int64(len(p.id)),
			Logf:              opts.Logf,
		}
		if p.script != nil {
			a.Disruptor = p.script
		}
		done := make(chan struct{})
		h.done = append(h.done, done)
		go func() {
			defer close(done)
			_ = a.Run(ctx)
		}()
	}
	return h
}

// relisten rebinds addr after the killed coordinator's listener
// closed, retrying briefly in case the close has not landed yet.
func relisten(addr string) (net.Listener, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("scenario: re-listen on coordinator address: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func shutdownCoordinator(c *fleet.Coordinator) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = c.Shutdown(ctx)
}

func runFleetStage(sc *Scenario, seed int64, faults []Event, opts RunOptions) (*outcome, []FleetProbe, error) {
	fs := sc.Fleet
	plans := resolveFleet(fs, seed)
	byID := make(map[string]*probePlan, len(plans))
	for _, p := range plans {
		byID[p.id] = p
	}

	var uniformPerf []Event
	var killEvents, diskEvents []Event
	assignDep := false
	for _, ev := range faults {
		switch {
		case ev.Action == "fleet.kill_coordinator":
			killEvents = append(killEvents, ev)
		case strings.HasPrefix(ev.Action, "disk."):
			diskEvents = append(diskEvents, ev)
		case strings.HasPrefix(ev.Action, "perf."):
			if ev.Target == "" || ev.Target == "*" {
				uniformPerf = append(uniformPerf, ev)
			} else {
				p := byID[ev.Target]
				p.perf = append(p.perf, ev)
				assignDep = true
			}
		default:
			armFleetEvent(byID[ev.Target], ev)
		}
	}

	spec := fleet.Spec{
		Workload:    fs.Campaign.Workload,
		Machine:     fs.Campaign.Machine,
		Threads:     fs.Campaign.Threads,
		Bounds:      append([]uint64(nil), fs.Campaign.Bounds...),
		SliceCycles: fs.Campaign.SliceCycles,
		Adaptive:    fs.Campaign.Adaptive,
		Exact:       fs.Campaign.Exact,
		Cells:       fs.Campaign.Cells,
		RepsPerCell: fs.Campaign.RepsPerCell,
		Seed:        seed,
	}
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}

	fopts := fleetOptions(fs, opts)
	if fs.Journal {
		// The journal lives in a fresh scratch directory so reruns never
		// trip ErrJournalExists; the path itself never enters the report.
		scratch, err := os.MkdirTemp(opts.Dir, "scenario-fleet-")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(scratch)
		fopts.JournalPath = filepath.Join(scratch, "fleet.journal")
		fopts.JournalSegmentBytes = fs.SegmentBytes
	}
	// disk.* events compile onto one faultdisk script threaded under the
	// journal. The same script serves both coordinator lives of a
	// kill-resume scenario — its one-shot faults never refire.
	var diskScript *faultdisk.Script
	diskKills := 0
	for _, ev := range diskEvents {
		if diskScript == nil {
			diskScript = faultdisk.NewScript()
		}
		switch ev.Action {
		case "disk.enospc":
			diskScript.ENOSPCOnWrite(ev.N)
		case "disk.sync_fail":
			diskScript.FailSync(ev.N)
		case "disk.torn_write":
			diskKills++
			diskScript.TearOnWrite(ev.N)
		case "disk.kill":
			diskKills++
			switch ev.Op {
			case "write":
				diskScript.KillOnWrite(ev.N)
			case "sync":
				diskScript.KillOnSync(ev.N)
			case "create":
				diskScript.KillOnCreate(ev.N)
			case "syncdir":
				diskScript.KillOnSyncDir(ev.N)
			}
		}
	}
	if diskScript != nil {
		fopts.JournalFS = diskScript.FS(nil)
	}
	var killScript *faultfleet.CoordinatorScript
	for _, ev := range killEvents {
		if killScript == nil {
			killScript = faultfleet.NewCoordinatorScript()
		}
		switch {
		case ev.OnDispatch > 0:
			killScript.KillOnDispatch(ev.OnDispatch)
		case ev.Window == "before_commit":
			killScript.KillBeforeCommit(ev.N)
		case ev.Window == "after_write":
			killScript.KillAfterWrite(ev.N)
		case ev.Window == "torn":
			killScript.TearCommit(ev.N)
		}
	}
	if killScript != nil {
		fopts.Disruptor = killScript
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	addr := ln.Addr().String()
	c1 := fleet.NewCoordinator(fopts)
	go c1.Serve(ln)
	coord := c1
	defer func() { shutdownCoordinator(coord) }()

	agents := startAgents(addr, fs, plans, uniformPerf, opts)
	defer agents.stop()

	// Probes whose first dials are scripted to fail register late; wait
	// only for the ones that can reach the coordinator immediately.
	waitN := len(plans)
	for _, ev := range faults {
		if ev.Action == "fleet.refuse_connects" {
			waitN--
		}
	}
	if waitN < 1 {
		waitN = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := c1.WaitForProbes(ctx, waitN); err != nil {
		return nil, nil, fmt.Errorf("scenario: fleet registration: %w", err)
	}

	var rep *fleet.Report
	if killScript != nil || diskKills > 0 {
		opts.logf("fleet: driving campaign into scripted coordinator kill")
		_, kerr := c1.RunCampaign(ctx, spec)
		// A coordinator disruptor kill and a disk kill are both crashes
		// the resumed coordinator must recover from byte-identically.
		if !errors.Is(kerr, fleet.ErrCoordinatorKilled) && !errors.Is(kerr, journal.ErrCrashed) {
			return nil, nil, fmt.Errorf("scenario: campaign returned %v, want a scripted kill", kerr)
		}
		fired := 0
		if killScript != nil {
			fired += killScript.Fired()
		}
		if diskScript != nil {
			fired += diskScript.Fired()
		}
		if fired == 0 {
			return nil, nil, errors.New("scenario: coordinator kill script never fired")
		}
		shutdownCoordinator(c1)
		ln2, err := relisten(addr)
		if err != nil {
			return nil, nil, err
		}
		fopts2 := fleetOptions(fs, opts)
		fopts2.JournalPath = fopts.JournalPath
		fopts2.JournalSegmentBytes = fopts.JournalSegmentBytes
		fopts2.JournalFS = fopts.JournalFS
		fopts2.Resume = true
		c2 := fleet.NewCoordinator(fopts2)
		go c2.Serve(ln2)
		coord = c2
		if err := c2.WaitForProbes(ctx, 1); err != nil {
			return nil, nil, fmt.Errorf("scenario: fleet re-registration after kill: %w", err)
		}
		opts.logf("fleet: resumed coordinator on %s", addr)
		rep, err = c2.RunCampaign(ctx, spec)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: resumed fleet campaign: %w", err)
		}
	} else {
		rep, err = c1.RunCampaign(ctx, spec)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: fleet campaign: %w", err)
		}
	}

	out := &outcome{fleetRep: rep, replayed: rep.Replayed, truncated: rep.Truncated, assignDep: assignDep}
	out.journalDegraded = rep.JournalDegraded
	if fs.Journal {
		// Offline fsck over whatever the campaign left on disk, through
		// the real filesystem (scripted faults are spent by now). The
		// verdict is deterministic; the fault detail in rep.JournalFault
		// may carry scratch paths and never enters the report.
		vr, verr := journal.Verify(nil, fopts.JournalPath)
		if verr != nil {
			return nil, nil, fmt.Errorf("scenario: fsck over the fleet journal: %w", verr)
		}
		out.journalVerify = vr.Worst().String()
	}

	// The reference is the fault-free ground truth, computed entirely
	// locally through the same handle the agents serve with. Per-probe
	// PMU weather makes the merged histogram depend on cell placement,
	// so the comparison (and the histogram itself) drops from the
	// report.
	var histJSON json.RawMessage
	if !assignDep && rep.Histogram != nil {
		handle := memhist.HandleRequest
		if len(uniformPerf) > 0 {
			handle = perfHandle(uniformPerf)
		}
		var hs []*memhist.Histogram
		for i := 0; i < spec.Cells; i++ {
			if hasGap(rep, i) {
				continue
			}
			h, err := handle(spec.CellRequest(i))
			if err != nil {
				return nil, nil, fmt.Errorf("scenario: fleet reference cell %d: %w", i, err)
			}
			hs = append(hs, h)
		}
		ref, err := memhist.MergeHistograms(hs)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: fleet reference merge: %w", err)
		}
		refJSON, err := json.Marshal(ref)
		if err != nil {
			return nil, nil, err
		}
		histJSON, err = json.Marshal(rep.Histogram)
		if err != nil {
			return nil, nil, err
		}
		out.matchesRef = rep.Complete() && bytes.Equal(histJSON, refJSON)
		out.hist = rep.Histogram
		out.render = rep.Histogram.Render(memhist.Occurrences, 60)
	}

	// Replay accounting is deterministic for commit-window kills (the
	// journal pins which cells committed before the crash) but not for
	// mid-scatter kills, where it depends on which dispatches landed.
	recReplayed := rep.Replayed
	for _, ev := range killEvents {
		if ev.OnDispatch > 0 {
			recReplayed = 0
		}
	}
	var gapIdx []int
	for _, g := range rep.Gaps {
		gapIdx = append(gapIdx, g.Cell)
	}
	var quar []string
	for _, q := range rep.Quarantined {
		quar = append(quar, q.ID)
	}
	out.records = append(out.records, Record{"outcome", fleetOutcomeRec{
		Kind: "outcome", Stage: "fleet",
		Complete: rep.Complete(), Cells: rep.Cells, Completed: rep.Completed,
		Gaps: gapIdx, Quarantined: quar,
		Replayed: recReplayed, Truncated: rep.Truncated,
		JournalDegraded: rep.JournalDegraded, JournalVerify: out.journalVerify,
		AssignmentDependent: assignDep, Histogram: histJSON,
	}})

	var probes []FleetProbe
	for _, p := range plans {
		probes = append(probes, FleetProbe{ID: p.id, Template: p.template, Chaos: p.chaos})
	}
	return out, probes, nil
}

func hasGap(rep *fleet.Report, cell int) bool {
	for _, g := range rep.Gaps {
		if g.Cell == cell {
			return true
		}
	}
	return false
}
