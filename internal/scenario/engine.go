package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"numaperf/internal/campaign"
	"numaperf/internal/clockx"
	"numaperf/internal/counters"
	"numaperf/internal/evsel"
	"numaperf/internal/exec"
	"numaperf/internal/faultdata"
	"numaperf/internal/faultnet"
	"numaperf/internal/faultperf"
	"numaperf/internal/faultrun"
	"numaperf/internal/fleet"
	"numaperf/internal/memhist"
	"numaperf/internal/perf"
	"numaperf/internal/probenet"
	"numaperf/internal/topology"
	"numaperf/internal/workloads"
)

// RunOptions tunes a scenario run without changing what the scenario
// means.
type RunOptions struct {
	// Seed overrides the scenario's seed when non-zero (the CLI's
	// -seed flag).
	Seed int64
	// Workers overrides campaign-mode concurrency when positive — the
	// conformance suite runs every scenario at 1 and 4 workers and the
	// report must not move.
	Workers int
	// Dir is the scratch directory for fleet crash journals; empty
	// uses the system temp directory.
	Dir string
	// Logf receives progress diagnostics (never part of the report;
	// free to be nondeterministic). Nil discards them.
	Logf func(format string, args ...any)
}

func (o RunOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// outcome carries everything the assertion evaluator may inspect after
// the stage ran.
type outcome struct {
	origin     string
	matchesRef bool
	hist       *memhist.Histogram
	camp       *campaign.Report
	cmp        *evsel.Comparison
	perfScript *faultperf.Script
	fleetRep   *fleet.Report
	replayed   int
	truncated  bool
	assignDep  bool
	render     string
	records    []Record

	// Journal end state (fleet mode with fleet.journal): whether a disk
	// fault cost the run its crash-resume protection, and the offline
	// fsck verdict of what the campaign left on disk.
	journalDegraded bool
	journalVerify   string

	// Overload-storm telemetry (fetch mode): the exact shed tally the
	// storm forced, and whether the queued fetch was served at brownout
	// fidelity with the honest render marker.
	sheds          int
	brownoutServed bool
	brownoutMarked bool
}

// Run executes a validated scenario and returns its deterministic run
// report. The timeline semantics: fault events are armed before the
// stage runs (their `at` orders the report and, for faultperf weather,
// converts to engine cycles); assertion events are evaluated against
// the stage outcome after it finishes. Fetch and campaign retry and
// backoff sleeps advance a clockx fake clock instead of the wall
// clock; fleet scenarios run their control plane on the tight
// real-time supervision windows the faultfleet chaos suite
// established.
func Run(sc *Scenario, opts RunOptions) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	ensureWorkloads()
	seed := sc.Seed
	if opts.Seed != 0 {
		seed = opts.Seed
	}
	if seed == 0 {
		seed = 1
	}
	res := &Result{Scenario: sc, Seed: seed}
	res.Records = append(res.Records, Record{"header", headerRec{"header", ReportVersion, sc.Name, sc.Mode, seed}})

	faults, asserts := splitEvents(sc.Events)
	fake := clockx.NewFake(time.Unix(0, 0))

	var out *outcome
	var err error
	switch sc.Mode {
	case ModeFetch:
		out, err = runFetch(sc, seed, faults, fake, opts)
	case ModeCampaign:
		out, err = runCampaignStage(sc, seed, faults, fake, opts)
	case ModeCollect:
		out, err = runCollect(sc, seed, faults, opts)
	case ModeFleet:
		var probes []FleetProbe
		out, probes, err = runFleetStage(sc, seed, faults, opts)
		if err == nil {
			res.Records = append(res.Records, Record{"fleet", fleetRec{"fleet", probes}})
		}
	default:
		err = &SpecError{Field: "mode", Msg: "unknown mode " + sc.Mode}
	}
	if err != nil {
		return nil, err
	}

	for _, ev := range faults {
		res.Records = append(res.Records, Record{"fault", faultRec{"fault", ev.At.String(), ev}})
	}
	res.Records = append(res.Records, out.records...)
	for _, ev := range asserts {
		ok, detail := evalAssert(sc, ev, out)
		if ok {
			res.Passed++
		} else {
			res.Failed++
		}
		res.Records = append(res.Records, Record{"assert", assertRec{"assert", ev.At.String(), ev.Action, ev.Target, ok, detail}})
	}
	res.Records = append(res.Records, Record{"verdict", verdictRec{"verdict", res.Failed == 0, res.Passed, res.Failed}})
	return res, nil
}

// splitEvents separates fault events from assertions, each stably
// ordered by `at` (ties keep file order).
func splitEvents(events []Event) (faults, asserts []Event) {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for _, ev := range sorted {
		if strings.HasPrefix(ev.Action, "assert.") {
			asserts = append(asserts, ev)
		} else {
			faults = append(faults, ev)
		}
	}
	return faults, asserts
}

func lookupMachine(name string) (*topology.Machine, error) {
	if name == "" {
		name = "dl580"
	}
	m, ok := topology.ByName(name)
	if !ok {
		return nil, &SpecError{Field: "machine", Msg: fmt.Sprintf("unknown machine %q", name)}
	}
	return m, nil
}

func lookupWorkload(name string) (workloads.Workload, error) {
	wl, ok := workloads.ByName(name)
	if !ok {
		return nil, &SpecError{Field: "workload", Msg: fmt.Sprintf("unknown workload %q", name)}
	}
	return wl, nil
}

// --- fetch stage: faultnet between a retrying client and a real probe
// server. ---

// helloFrameLen reproduces the exact on-wire size of the probe
// server's HELLO frame so response-side byte offsets can be expressed
// relative to the response stream, not the raw connection.
func helloFrameLen() (int64, error) {
	var buf bytes.Buffer
	err := probenet.WriteFrame(&buf, probenet.FrameHello, &probenet.Hello{
		Version:   probenet.Version,
		Workloads: workloads.Names(),
		Machines:  topology.MachineNames(),
		MaxFrame:  probenet.MaxFrame,
	})
	if err != nil {
		return 0, err
	}
	return int64(buf.Len()), nil
}

func runFetch(sc *Scenario, seed int64, faults []Event, fake *clockx.Fake, opts RunOptions) (*outcome, error) {
	fs := sc.Fetch
	req := memhist.ProbeRequest{
		Workload: fs.Workload,
		Machine:  fs.Machine,
		Threads:  fs.Threads,
		Bounds:   append([]uint64(nil), fs.Bounds...),
		Reps:     fs.Reps,
		Seed:     seed,
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	hlen, err := helloFrameLen()
	if err != nil {
		return nil, err
	}
	perConn := map[int]*faultnet.ConnScript{}
	script := func(i int) *faultnet.ConnScript {
		cs := perConn[i]
		if cs == nil {
			return cs
		}
		if cs.CorruptWriteAt != 0 {
			cs.CorruptWriteAt += hlen
		}
		if cs.TruncateWriteAt != 0 {
			cs.TruncateWriteAt += hlen
		}
		return cs
	}
	failAccepts := 0
	var storm *Event
	for i, ev := range faults {
		cs := perConn[ev.Conn]
		if cs == nil {
			cs = &faultnet.ConnScript{}
			perConn[ev.Conn] = cs
		}
		switch ev.Action {
		case "net.delay_response":
			cs.WriteDelay = ev.Delay.D()
		case "net.corrupt_response":
			cs.CorruptWriteAt = ev.Offset
		case "net.truncate_response":
			cs.TruncateWriteAt = ev.Offset
		case "net.corrupt_request":
			cs.CorruptReadAt = ev.Offset
		case "net.reset_request":
			cs.ResetReadAt = ev.Offset
		case "net.refuse_accepts":
			failAccepts = ev.Count
		case "net.overload_storm":
			storm = &faults[i]
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fl := faultnet.Wrap(ln, faultnet.Options{Seed: seed, FailFirstAccepts: failAccepts, Script: script})
	srv := &memhist.ProbeServer{
		MaxConns:      8,
		MaxInflight:   fs.MaxInflight,
		QueueBudget:   fs.QueueBudget,
		BrownoutAfter: fs.BrownoutAfter,
		Seed:          seed,
	}
	var hogEntered, hogRelease chan struct{}
	if storm != nil {
		// The first request to reach the measurement slot is the storm's
		// hog: it parks there until the engine releases it, so admission
		// decisions during the storm are a pure function of the scenario.
		hogEntered, hogRelease = make(chan struct{}), make(chan struct{})
		var hogged atomic.Bool
		srv.Handle = func(r memhist.ProbeRequest) (*memhist.Histogram, error) {
			if hogged.CompareAndSwap(false, true) {
				close(hogEntered)
				<-hogRelease
			}
			return memhist.HandleRequest(r)
		}
	}
	done := make(chan struct{})
	go func() { _ = srv.Serve(fl); close(done) }()
	defer func() { ln.Close(); <-done }()

	ref, err := memhist.HandleRequest(req)
	if err != nil {
		return nil, fmt.Errorf("scenario: fetch reference: %w", err)
	}
	timeout := fs.Timeout.D()
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	out := &outcome{}
	if storm != nil {
		bh, sheds, serr := driveOverloadStorm(ln.Addr().String(), req, storm.Count, srv, hogEntered, hogRelease, timeout, opts)
		if serr != nil {
			return nil, fmt.Errorf("scenario: overload storm: %w", serr)
		}
		out.sheds = sheds
		out.brownoutServed = bh.Brownout
		out.brownoutMarked = strings.Contains(bh.Render(memhist.Occurrences, 60), "(BROWNOUT)")
		bj, err := json.Marshal(bh)
		if err != nil {
			return nil, err
		}
		out.records = append(out.records, Record{"outcome", overloadOutcomeRec{
			Kind: "outcome", Stage: "overload",
			Sheds: sheds, BrownoutServed: out.brownoutServed, Marked: out.brownoutMarked,
			Histogram: bj,
		}})
		opts.logf("storm: %d sheds, brownout fetch served, probe recovering", sheds)
	}
	opts.logf("fetch: dialing probe with %d retries", fs.Retries)
	h, ferr := memhist.FetchRemoteWith(ln.Addr().String(), req, memhist.FetchOptions{
		Timeout:       timeout,
		Retries:       fs.Retries,
		FallbackLocal: fs.FallbackLocal,
		Sleep:         func(d time.Duration) { fake.Advance(d) },
	})
	if ferr != nil {
		// The error text may carry ephemeral addresses, so the report
		// records only the deterministic verdict.
		opts.logf("fetch failed: %v", ferr)
		out.origin = "error"
		out.render = "fetch failed"
		out.records = append(out.records, Record{"outcome", fetchOutcomeRec{"outcome", "fetch", "error", false, json.RawMessage("null")}})
		return out, nil
	}
	out.hist = h
	out.origin = h.Origin
	out.matchesRef = reflect.DeepEqual(h.Bounds, ref.Bounds) && reflect.DeepEqual(h.Counts, ref.Counts)
	hj, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	out.render = h.Render(memhist.Occurrences, 60)
	out.records = append(out.records, Record{"outcome", fetchOutcomeRec{"outcome", "fetch", h.Origin, out.matchesRef, hj}})
	return out, nil
}

// driveOverloadStorm reproduces a deterministic overload episode
// against the running probe server: a hog request saturates the single
// measurement slot, `count` sequential storm requests queue briefly,
// time out and shed with retry-after hints (tripping brownout at the
// configured threshold), and a fetch through the still-held queue is
// answered at brownout fidelity. The hog releases only once that fetch
// is parked in the queue — a calm admission would clear the brownout —
// so the reduced-fidelity response is a pure function of the scenario.
func driveOverloadStorm(addr string, req memhist.ProbeRequest, count int, srv *memhist.ProbeServer, entered, release chan struct{}, timeout time.Duration, opts RunOptions) (*memhist.Histogram, int, error) {
	hog, err := stormConn(addr, req, 60_000)
	if err != nil {
		return nil, 0, fmt.Errorf("hog request: %w", err)
	}
	defer hog.Close()
	select {
	case <-entered:
	case <-time.After(60 * time.Second):
		return nil, 0, errors.New("hog request never reached the measurement slot")
	}
	opts.logf("storm: hog holds the measurement slot, forcing %d sheds", count)

	// Each storm request takes the empty queue slot, waits out half its
	// tiny propagated deadline and sheds; firing them sequentially keeps
	// the shed tally exact.
	sheds := 0
	for i := 0; i < count; i++ {
		if err := stormShed(addr, req); err != nil {
			return nil, sheds, fmt.Errorf("storm request %d: %w", i+1, err)
		}
		sheds++
	}

	queued := srv.Stats().QueuedRequests
	type fetched struct {
		h   *memhist.Histogram
		err error
	}
	got := make(chan fetched, 1)
	go func() {
		h, err := memhist.FetchRemoteWith(addr, req, memhist.FetchOptions{Timeout: timeout})
		got <- fetched{h, err}
	}()
	deadline := time.Now().Add(60 * time.Second)
	for srv.Stats().QueuedRequests == queued {
		if time.Now().After(deadline) {
			return nil, sheds, errors.New("brownout fetch never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if _, _, err := probenet.ReadFrame(hog); err != nil {
		return nil, sheds, fmt.Errorf("hog response: %w", err)
	}
	r := <-got
	if r.err != nil {
		return nil, sheds, fmt.Errorf("brownout fetch: %w", r.err)
	}
	return r.h, sheds, nil
}

// stormConn dials the probe, consumes the HELLO and sends req with the
// given propagated deadline, leaving the response unread.
func stormConn(addr string, req memhist.ProbeRequest, timeoutMillis int64) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, 30*time.Second)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(90 * time.Second))
	fail := func(err error) (net.Conn, error) {
		conn.Close()
		return nil, err
	}
	t, payload, err := probenet.ReadFrame(conn)
	if err != nil {
		return fail(err)
	}
	var hello probenet.Hello
	if err := probenet.Decode(t, payload, &hello); err != nil {
		return fail(err)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fail(err)
	}
	env := &probenet.Request{ID: 1, TimeoutMillis: timeoutMillis, Body: body}
	if err := probenet.WriteFrame(conn, probenet.FrameRequest, env); err != nil {
		return fail(err)
	}
	return conn, nil
}

// stormShed sends one storm request with a tiny propagated deadline and
// requires the shed answer: an "overloaded" ERROR carrying a positive
// retry-after hint.
func stormShed(addr string, req memhist.ProbeRequest) error {
	conn, err := stormConn(addr, req, 20)
	if err != nil {
		return err
	}
	defer conn.Close()
	t, payload, err := probenet.ReadFrame(conn)
	if err != nil {
		return err
	}
	if t != probenet.FrameError {
		return fmt.Errorf("answered with %s, want a shed ERROR", t)
	}
	var em probenet.ErrorMsg
	if err := probenet.Decode(t, payload, &em); err != nil {
		return err
	}
	if em.Code != probenet.CodeOverloaded {
		return fmt.Errorf("shed with code %q, want %q", em.Code, probenet.CodeOverloaded)
	}
	if em.RetryAfterMillis <= 0 {
		return errors.New("shed answer carried no retry-after hint")
	}
	return nil
}

// --- campaign stage: faultrun inside the supervised runner, faultdata
// on the gathered measurement. ---

func runKind(action string) faultrun.Kind {
	switch action {
	case "run.hang":
		return faultrun.Hang
	case "run.panic":
		return faultrun.Panic
	case "run.exit":
		return faultrun.Exit
	case "run.corrupt":
		return faultrun.Corrupt
	default:
		return faultrun.Slow
	}
}

func runCampaignStage(sc *Scenario, seed int64, faults []Event, fake *clockx.Fake, opts RunOptions) (*outcome, error) {
	cs := sc.Campaign
	wl, err := lookupWorkload(cs.Workload)
	if err != nil {
		return nil, err
	}
	mach, err := lookupMachine(cs.Machine)
	if err != nil {
		return nil, err
	}
	evIDs := make([]counters.EventID, 0, len(cs.Events))
	for _, name := range cs.Events {
		id, ok := counters.Lookup(name)
		if !ok {
			return nil, &SpecError{Field: "campaign.events", Msg: fmt.Sprintf("unknown counter %q", name)}
		}
		evIDs = append(evIDs, id)
	}
	mode := perf.Batched
	switch cs.Mode {
	case "multiplexed":
		mode = perf.Multiplexed
	case "unlimited":
		mode = perf.Unlimited
	}
	script := faultrun.NewScript()
	defer script.Release()
	haveRun := false
	var dataEvents []Event
	for _, ev := range faults {
		switch {
		case strings.HasPrefix(ev.Action, "run."):
			haveRun = true
			script.On(ev.Cell, faultrun.Fault{
				Kind:     runKind(ev.Action),
				Times:    ev.Times,
				ExitCode: ev.ExitCode,
				Event:    ev.Event,
				NaN:      ev.NaN,
				Delay:    ev.Delay.D(),
			})
		case strings.HasPrefix(ev.Action, "data."):
			dataEvents = append(dataEvents, ev)
		}
	}
	threads := cs.Threads
	if len(threads) == 0 {
		threads = []int{1}
	}
	points := make([]campaign.Point, 0, len(threads))
	for _, th := range threads {
		th := th
		points = append(points, campaign.Point{
			Param: float64(th),
			Mk: func(cellSeed int64) (*exec.Engine, func(*exec.Thread), error) {
				e, err := exec.NewEngine(exec.Config{Machine: mach, Threads: th, Seed: cellSeed, Chunk: 1024})
				if err != nil {
					return nil, nil, err
				}
				return e, wl.Body(), nil
			},
		})
	}
	reps := cs.Reps
	if reps == 0 {
		reps = 3
	}
	workers := cs.Workers
	if opts.Workers > 0 {
		workers = opts.Workers
	}
	runTimeout := cs.RunTimeout.D()
	if runTimeout == 0 {
		runTimeout = 10 * time.Second
	}
	r := campaign.Runner{
		Spec: campaign.Spec{ParamName: "threads", Points: points, Events: evIDs, Reps: reps, Mode: mode, Seed: seed},
		Opts: campaign.Options{
			RunTimeout:  runTimeout,
			MaxRetries:  cs.MaxRetries,
			KeepGoing:   cs.KeepGoing,
			Concurrency: workers,
			Sleep:       func(d time.Duration) { fake.Advance(d) },
			Logf:        opts.Logf,
		},
	}
	if haveRun {
		r.Opts.Wrap = script.Wrap
	}
	rep, err := r.Run()
	if err != nil {
		return nil, fmt.Errorf("scenario: campaign stage: %w", err)
	}
	out := &outcome{camp: rep, render: rep.Summary()}

	var gaps []string
	for _, g := range rep.Gaps {
		gaps = append(gaps, g.Cell.Key())
	}
	var quar []string
	for _, q := range rep.Quarantined {
		quar = append(quar, q.Name)
	}
	var pts []pointOutcome
	for _, pr := range rep.Points {
		po := pointOutcome{Param: pr.Param}
		for _, name := range cs.Events {
			id, _ := counters.Lookup(name)
			s := pr.M.Samples[id]
			if len(s) == 0 {
				continue
			}
			mean := pr.M.Mean(id)
			em := eventMean{Event: name, Mean: mean, Samples: len(s)}
			if math.IsNaN(mean) || math.IsInf(mean, 0) {
				em.Mean, em.NonFinite = 0, true
			}
			po.Events = append(po.Events, em)
		}
		pts = append(pts, po)
	}
	out.records = append(out.records, Record{"outcome", campaignOutcomeRec{
		Kind: "outcome", Stage: "campaign",
		Complete: rep.Complete(), Cells: rep.Cells, Retried: rep.Retried,
		Gaps: gaps, Quarantined: quar, Points: pts,
	}})

	if len(dataEvents) > 0 {
		if len(rep.Points) == 0 || rep.Points[0].M == nil {
			return nil, errors.New("scenario: data stage has no measurement to poison")
		}
		base := rep.Points[0].M
		inj := faultdata.New(seed)
		faulted := base
		for _, ev := range dataEvents {
			switch ev.Action {
			case "data.poison_samples":
				faulted = inj.PoisonSamples(faulted, ev.Frac)
			case "data.flatten_series":
				id, ok := counters.Lookup(ev.Event)
				if !ok {
					return nil, &SpecError{Field: "events", Msg: fmt.Sprintf("unknown counter %q", ev.Event)}
				}
				faulted = inj.FlattenSeries(faulted, id, ev.Value)
			case "data.inject_outliers":
				factor := ev.Factor
				if factor == 0 {
					factor = 1000
				}
				faulted = inj.InjectOutliers(faulted, ev.Frac, factor)
			}
		}
		cmp, err := evsel.Compare(base, faulted)
		if err != nil {
			return nil, fmt.Errorf("scenario: analyze stage: %w", err)
		}
		out.cmp = cmp
		out.render = cmp.Render()
		var diag []string
		for _, row := range cmp.Rows {
			if row.Degraded() {
				diag = append(diag, row.Name)
			}
		}
		out.records = append(out.records, Record{"outcome", analyzeOutcomeRec{
			Kind: "outcome", Stage: "analyze",
			Degraded: cmp.Degraded(), HardDegraded: cmp.HardDegraded(), DiagEvents: diag,
		}})
	}
	return out, nil
}

// --- collect stage: faultperf PMU weather under memhist.Collect.
// Timeline durations convert to engine cycles at the machine's clock
// rate ("at: 40us" on a 2.4 GHz machine is cycle 96000). ---

func cyclesAt(d Duration, mach *topology.Machine) uint64 {
	return uint64(d.D().Seconds() * float64(mach.FreqHz))
}

func armPerf(script *faultperf.Script, ev Event, mach *topology.Machine) {
	from := cyclesAt(ev.At, mach)
	to := cyclesAt(ev.Until, mach)
	switch ev.Action {
	case "perf.overrun_burst":
		script.OverrunBurst(from, to)
	case "perf.throttle_storm":
		script.ThrottleStorm(from, to)
	case "perf.observer_stall":
		script.ObserverStall(from, to)
	case "perf.starve":
		script.Starve(ev.Threshold, ev.Slices)
	}
}

func runCollect(sc *Scenario, seed int64, faults []Event, opts RunOptions) (*outcome, error) {
	cs := sc.Collect
	wl, err := lookupWorkload(cs.Workload)
	if err != nil {
		return nil, err
	}
	mach, err := lookupMachine(cs.Machine)
	if err != nil {
		return nil, err
	}
	threads := cs.Threads
	if threads == 0 {
		threads = 1
	}
	chunk := cs.Chunk
	if chunk == 0 {
		chunk = 1024
	}
	e, err := exec.NewEngine(exec.Config{Machine: mach, Threads: threads, Seed: seed, Chunk: chunk})
	if err != nil {
		return nil, err
	}
	script := faultperf.NewScript()
	for _, ev := range faults {
		armPerf(script, ev, mach)
	}
	opts.logf("collect: measuring %s on %s", cs.Workload, mach.Name)
	h, err := memhist.Collect(e, wl.Body(), memhist.Options{
		Bounds:      cs.Bounds,
		SliceCycles: cs.SliceCycles,
		Reps:        cs.Reps,
		Adaptive:    cs.Adaptive,
		Sampler: perf.SamplerOptions{
			BufferCap:      cs.BufferCap,
			ThrottleLimit:  cs.ThrottleLimit,
			ThrottleWindow: cs.ThrottleWindow,
			Disruptor:      script,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: collect stage: %w", err)
	}
	out := &outcome{hist: h, perfScript: script}
	out.render = h.Render(memhist.Occurrences, 60)
	hj, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	duty := 1.0
	if h.Quality != nil {
		duty = h.Quality.DutyCycle()
	}
	out.records = append(out.records, Record{"outcome", collectOutcomeRec{
		Kind: "outcome", Stage: "collect",
		Coverage:       h.Coverage(),
		DutyCycle:      duty,
		RecordsDropped: script.RecordsDropped(),
		ThrottlesFired: script.ThrottlesFired(),
		SlicesStarved:  script.SlicesStarved(),
		DrainsStalled:  script.DrainsStalled(),
		Histogram:      hj,
	}})
	return out, nil
}

// --- assertions ---

func evalAssert(sc *Scenario, ev Event, out *outcome) (bool, string) {
	switch ev.Action {
	case "assert.complete":
		if sc.Mode == ModeCampaign {
			c := out.camp
			return c.Complete(), fmt.Sprintf("cells=%d gaps=%d quarantined=%d", c.Cells, len(c.Gaps), len(c.Quarantined))
		}
		r := out.fleetRep
		return r.Complete(), fmt.Sprintf("cells=%d completed=%d gaps=%d", r.Cells, r.Completed, len(r.Gaps))
	case "assert.gaps":
		var got int
		if sc.Mode == ModeCampaign {
			got = len(out.camp.Gaps)
		} else {
			got = len(out.fleetRep.Gaps)
		}
		return got == ev.Count, fmt.Sprintf("gaps=%d want=%d", got, ev.Count)
	case "assert.retried":
		got := out.camp.Retried
		return float64(got) >= *ev.Min, fmt.Sprintf("retried=%d min=%g", got, *ev.Min)
	case "assert.replayed":
		return float64(out.replayed) >= *ev.Min, fmt.Sprintf("replayed=%d min=%g", out.replayed, *ev.Min)
	case "assert.truncated":
		return out.truncated, fmt.Sprintf("truncated=%v", out.truncated)
	case "assert.quarantined":
		if sc.Mode == ModeCampaign {
			for _, q := range out.camp.Quarantined {
				if q.Name == ev.Target {
					return true, fmt.Sprintf("counter %s quarantined after %d strikes", q.Name, q.Strikes)
				}
			}
			return false, fmt.Sprintf("counter %s not quarantined", ev.Target)
		}
		for _, q := range out.fleetRep.Quarantined {
			if q.ID == ev.Target {
				return true, fmt.Sprintf("probe %s quarantined", q.ID)
			}
		}
		return false, fmt.Sprintf("probe %s not quarantined", ev.Target)
	case "assert.coverage":
		if out.hist == nil {
			return false, "no deterministic histogram to assess"
		}
		c := out.hist.Coverage()
		lo := *ev.Min
		hi := 1.0
		if ev.Max != nil {
			hi = *ev.Max
		}
		return c >= lo && c <= hi, fmt.Sprintf("coverage=%.4f range=[%g, %g]", c, lo, hi)
	case "assert.records_dropped":
		got := out.perfScript.RecordsDropped()
		return float64(got) >= *ev.Min, fmt.Sprintf("records_dropped=%d min=%g", got, *ev.Min)
	case "assert.throttles":
		got := out.perfScript.ThrottlesFired()
		return float64(got) >= *ev.Min, fmt.Sprintf("throttles=%d min=%g", got, *ev.Min)
	case "assert.slices_starved":
		got := out.perfScript.SlicesStarved()
		return float64(got) >= *ev.Min, fmt.Sprintf("slices_starved=%d min=%g", got, *ev.Min)
	case "assert.degraded":
		return out.cmp.Degraded(), fmt.Sprintf("degraded=%v", out.cmp.Degraded())
	case "assert.hard_degraded":
		return out.cmp.HardDegraded(), fmt.Sprintf("hard_degraded=%v", out.cmp.HardDegraded())
	case "assert.finite_render":
		finite := !strings.Contains(out.render, "NaN") && !strings.Contains(out.render, "Inf")
		return finite, fmt.Sprintf("finite=%v", finite)
	case "assert.matches_reference":
		return out.matchesRef, fmt.Sprintf("matches_reference=%v", out.matchesRef)
	case "assert.brownout":
		return out.brownoutServed && out.brownoutMarked,
			fmt.Sprintf("brownout_served=%v marked=%v", out.brownoutServed, out.brownoutMarked)
	case "assert.backpressure":
		if sc.Mode == ModeFetch {
			return float64(out.sheds) >= *ev.Min, fmt.Sprintf("sheds=%d min=%g", out.sheds, *ev.Min)
		}
		// The fleet deferral tally varies with dispatch scheduling, so
		// the detail records only the threshold verdict — keeping the
		// report byte-identical across runs.
		ok := float64(out.fleetRep.Backpressure) >= *ev.Min
		return ok, fmt.Sprintf("deferrals>=%g met=%v", *ev.Min, ok)
	case "assert.journal":
		state := "clean"
		if out.journalDegraded {
			state = "degraded"
		}
		ok := state == ev.Equals
		if ev.Equals == "clean" {
			// A clean journal must also fsck clean on disk — degradation
			// and corruption both fail the assertion.
			ok = ok && out.journalVerify == "clean"
		}
		return ok, fmt.Sprintf("journal=%s fsck=%s want=%s", state, out.journalVerify, ev.Equals)
	case "assert.origin":
		return out.origin == ev.Equals, fmt.Sprintf("origin=%s want=%s", out.origin, ev.Equals)
	}
	return false, "unknown assertion"
}
