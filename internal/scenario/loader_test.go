package scenario

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// The loader suite pins the DSL's contract: YAML and JSON inputs decode
// through the identical strict path, every rejection carries a typed
// error that unwraps to ErrInvalid, and the checked-in scenario library
// always parses.

const validYAML = `
name: loader-test
description: a minimal campaign scenario
mode: campaign
seed: 7
campaign:
  workload: scenario-tiny
  machine: 2s
  threads: [1, 2]
  events: [CPU_CLK_UNHALTED.THREAD]
  reps: 2
events:
  - at: 0s
    action: run.exit
    cell: p0/r0/b0
    times: 1
    exit_code: 9
  - at: 1s
    action: assert.complete
`

const validJSON = `{
  "name": "loader-test",
  "description": "a minimal campaign scenario",
  "mode": "campaign",
  "seed": 7,
  "campaign": {
    "workload": "scenario-tiny",
    "machine": "2s",
    "threads": [1, 2],
    "events": ["CPU_CLK_UNHALTED.THREAD"],
    "reps": 2
  },
  "events": [
    {"at": "0s", "action": "run.exit", "cell": "p0/r0/b0", "times": 1, "exit_code": 9},
    {"at": "1s", "action": "assert.complete"}
  ]
}`

func TestParseYAMLAndJSONEquivalent(t *testing.T) {
	fromYAML, err := Parse([]byte(validYAML))
	if err != nil {
		t.Fatalf("YAML parse: %v", err)
	}
	fromJSON, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatalf("JSON parse: %v", err)
	}
	if !reflect.DeepEqual(fromYAML, fromJSON) {
		t.Errorf("YAML and JSON decode differ:\nyaml: %+v\njson: %+v", fromYAML, fromJSON)
	}
	if fromYAML.Events[0].At.D() != 0 || fromYAML.Events[1].At.String() != "1s" {
		t.Errorf("durations decoded wrong: %+v", fromYAML.Events)
	}
}

func TestParseNumericDurationIsSeconds(t *testing.T) {
	sc, err := Parse([]byte(strings.Replace(validYAML, "at: 1s", "at: 1", 1)))
	if err != nil {
		t.Fatalf("numeric duration: %v", err)
	}
	if got := sc.Events[1].At.String(); got != "1s" {
		t.Errorf("at: 1 decoded as %s, want 1s", got)
	}
}

func replaceLine(src, old, new string) []byte {
	return []byte(strings.Replace(src, old, new, 1))
}

func TestParseTypedRejections(t *testing.T) {
	cases := []struct {
		name  string
		input []byte
		check func(t *testing.T, err error)
	}{
		{
			"unknown action",
			replaceLine(validYAML, "action: run.exit", "action: run.explode"),
			func(t *testing.T, err error) {
				var ua *UnknownActionError
				if !errors.As(err, &ua) || ua.Action != "run.explode" || ua.Mode != "" {
					t.Errorf("err = %v, want UnknownActionError for run.explode", err)
				}
			},
		},
		{
			"action in wrong mode",
			replaceLine(validYAML, "action: run.exit", "action: net.reset_request\n    offset: 3"),
			func(t *testing.T, err error) {
				var ua *UnknownActionError
				if !errors.As(err, &ua) || ua.Mode != ModeCampaign {
					t.Errorf("err = %v, want mode-mismatch UnknownActionError", err)
				}
			},
		},
		{
			"bad duration",
			replaceLine(validYAML, "at: 1s", "at: banana"),
			func(t *testing.T, err error) {
				var bd *BadDurationError
				if !errors.As(err, &bd) {
					t.Errorf("err = %v, want BadDurationError", err)
				}
			},
		},
		{
			"negative duration",
			replaceLine(validYAML, "at: 1s", "at: -3s"),
			func(t *testing.T, err error) {
				var bd *BadDurationError
				if !errors.As(err, &bd) {
					t.Errorf("err = %v, want BadDurationError", err)
				}
			},
		},
		{
			"duplicate fault target",
			replaceLine(validYAML, "events:\n  - at: 0s",
				"events:\n  - action: run.panic\n    cell: p0/r0/b0\n  - action: run.panic\n    cell: p0/r0/b0\n  - at: 0s"),
			func(t *testing.T, err error) {
				var dt *DuplicateTargetError
				if !errors.As(err, &dt) || dt.Target != "p0/r0/b0" {
					t.Errorf("err = %v, want DuplicateTargetError on the cell", err)
				}
			},
		},
		{
			"unknown field",
			replaceLine(validYAML, "seed: 7", "seed: 7\nturbo: true"),
			func(t *testing.T, err error) {
				var se *SpecError
				if !errors.As(err, &se) {
					t.Errorf("err = %v, want SpecError from the strict decoder", err)
				}
			},
		},
		{
			"missing mode block",
			replaceLine(validYAML, "mode: campaign", "mode: fetch"),
			func(t *testing.T, err error) {
				var se *SpecError
				if !errors.As(err, &se) {
					t.Errorf("err = %v, want SpecError", err)
				}
			},
		},
		{
			"kill without journal",
			[]byte(`
name: kill-no-journal
mode: fleet
fleet:
  probes: [a]
  campaign:
    workload: scenario-tiny
    bounds: [4, 64]
events:
  - action: fleet.kill_coordinator
    window: before_commit
`),
			func(t *testing.T, err error) {
				var se *SpecError
				if !errors.As(err, &se) {
					t.Errorf("err = %v, want SpecError", err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.input)
			if err == nil {
				t.Fatal("parse accepted invalid input")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("%v does not unwrap to ErrInvalid", err)
			}
			tc.check(t, err)
		})
	}
}

// deepBlockYAML builds n nested block mappings, one key per level.
func deepBlockYAML(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(strings.Repeat(" ", i))
		b.WriteString("a:\n")
	}
	b.WriteString(strings.Repeat(" ", n))
	b.WriteString("b: 1\n")
	return b.String()
}

func TestParseYAMLSyntaxRejections(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"tab indentation", "name: x\n\tmode: fetch\n"},
		{"unterminated quote", "name: \"x\n"},
		{"document marker", "---\nname: x\n"},
		{"anchor", "name: &a x\n"},
		{"duplicate key", "name: x\nname: y\n"},
		{"deep nesting", "a: " + strings.Repeat("[", 40) + "1" + strings.Repeat("]", 40)},
		{"deep block nesting", deepBlockYAML(40)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.input))
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("err = %v, want *SyntaxError", err)
			}
		})
	}
}

// TestLibraryScenariosParse keeps the checked-in scenario library
// loadable: a DSL change that orphans a library file fails here, not
// in CI's slower run job.
func TestLibraryScenariosParse(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("scenario library has %d files, want at least one per injector", len(files))
	}
	modes := map[string]bool{}
	for _, f := range files {
		sc, err := Load(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		modes[sc.Mode] = true
	}
	for _, mode := range []string{ModeFetch, ModeCampaign, ModeCollect, ModeFleet} {
		if !modes[mode] {
			t.Errorf("library covers no %q scenario", mode)
		}
	}
}

func TestActionsRegistryComplete(t *testing.T) {
	acts := Actions()
	if len(acts) != len(registry) {
		t.Fatalf("Actions() lists %d of %d registry entries", len(acts), len(registry))
	}
	prefixes := map[string]bool{}
	for _, a := range acts {
		if a.Summary == "" || a.Params == "" || len(a.Modes) == 0 {
			t.Errorf("action %s is missing documentation", a.Name)
		}
		prefixes[strings.SplitN(a.Name, ".", 2)[0]] = true
	}
	// One DSL over the five injectors, plus the assertion namespace.
	for _, want := range []string{"net", "run", "data", "perf", "fleet", "assert"} {
		if !prefixes[want] {
			t.Errorf("registry has no %s.* actions", want)
		}
	}
}
