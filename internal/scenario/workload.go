package scenario

import (
	"sync"

	"numaperf/internal/exec"
	"numaperf/internal/workloads"
)

// The scenario library needs workloads that are fast enough to run in
// tests yet long enough to exercise the fault machinery, so the
// package registers two of its own: "scenario-tiny", a 16 KiB pointer
// walk for fetch/campaign/fleet scenarios where the measurement is
// incidental, and "scenario-mlc", the 2 MiB latency chase the faultperf
// chaos suite measures, long enough to span many cycler slices so
// timed PMU weather windows land inside the run.

type tinyWorkload struct{}

func (tinyWorkload) Name() string { return "scenario-tiny" }
func (tinyWorkload) Body() func(*exec.Thread) {
	return func(t *exec.Thread) {
		buf := t.Alloc(1 << 14)
		for i := uint64(0); i < 512; i++ {
			t.Load(buf.Addr(i * 64 % (1 << 14)))
		}
	}
}

var ensureWorkloads = sync.OnceFunc(func() {
	workloads.Register("scenario-tiny", func() workloads.Workload { return tinyWorkload{} })
	workloads.Register("scenario-mlc", func() workloads.Workload {
		return workloads.MLC{BufferBytes: 2 << 20, Chases: 60_000}
	})
})
