package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// actionDef is one registry entry: where an action is legal, what it
// means, and how to validate its parameters.
type actionDef struct {
	name     string
	modes    []string
	summary  string
	params   string
	validate func(sc *Scenario, ev *Event, i int) error
}

func (a *actionDef) allowsMode(mode string) bool {
	for _, m := range a.modes {
		if m == mode {
			return true
		}
	}
	return false
}

// ActionInfo is the exported registry row behind `memscenario
// -list-actions`.
type ActionInfo struct {
	Name    string
	Modes   []string
	Summary string
	Params  string
}

// Actions lists every known action in name order.
func Actions() []ActionInfo {
	out := make([]ActionInfo, 0, len(registry))
	for _, a := range registry {
		out = append(out, ActionInfo{
			Name:    a.name,
			Modes:   append([]string(nil), a.modes...),
			Summary: a.summary,
			Params:  a.params,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func lookupAction(name string) (*actionDef, bool) {
	a, ok := registry[name]
	return a, ok
}

func evField(i int, field string) string {
	return fmt.Sprintf("events[%d].%s", i, field)
}

func noValidation(*Scenario, *Event, int) error { return nil }

func needCell(_ *Scenario, ev *Event, i int) error {
	var p, r, b int
	if n, err := fmt.Sscanf(ev.Cell, "p%d/r%d/b%d", &p, &r, &b); n != 3 || err != nil {
		return &SpecError{Field: evField(i, "cell"), Msg: fmt.Sprintf("cell %q must look like \"p0/r1/b2\"", ev.Cell)}
	}
	return nil
}

func needDelay(_ *Scenario, ev *Event, i int) error {
	if ev.Delay <= 0 {
		return &SpecError{Field: evField(i, "delay"), Msg: "a positive delay is required"}
	}
	return nil
}

func needPositiveOffset(_ *Scenario, ev *Event, i int) error {
	if ev.Offset <= 0 {
		return &SpecError{Field: evField(i, "offset"), Msg: "a positive byte offset is required"}
	}
	return nil
}

func needFrac(_ *Scenario, ev *Event, i int) error {
	if ev.Frac <= 0 || ev.Frac > 1 {
		return &SpecError{Field: evField(i, "frac"), Msg: "must be in (0, 1]"}
	}
	return nil
}

// needFleetTarget checks the event names a probe that actually exists.
func needFleetTarget(sc *Scenario, ev *Event, i int) error {
	if ev.Target == "" {
		return &SpecError{Field: evField(i, "target"), Msg: "a probe target is required"}
	}
	for _, id := range sc.Fleet.probeIDs() {
		if id == ev.Target {
			return nil
		}
	}
	return &SpecError{Field: evField(i, "target"), Msg: fmt.Sprintf("probe %q is not in the fleet", ev.Target)}
}

// perfTarget validates faultperf actions: standalone collect scenarios
// take no target; fleet scenarios accept "*" (uniform PMU weather on
// every probe, which keeps the merged histogram deterministic) or a
// probe ID (per-probe weather — the merged histogram then depends on
// cell placement and is excluded from the report).
func perfTarget(sc *Scenario, ev *Event, i int) error {
	if sc.Mode == ModeCollect {
		if ev.Target != "" {
			return &SpecError{Field: evField(i, "target"), Msg: "collect scenarios take no target"}
		}
		return nil
	}
	if ev.Target == "" || ev.Target == "*" {
		return nil
	}
	return needFleetTarget(sc, ev, i)
}

func perfWindow(sc *Scenario, ev *Event, i int) error {
	if err := perfTarget(sc, ev, i); err != nil {
		return err
	}
	if ev.Until <= ev.At {
		return &SpecError{Field: evField(i, "until"), Msg: "the window must end after it starts (until > at)"}
	}
	return nil
}

var registry = map[string]*actionDef{
	// --- faultnet (fetch): the probe connection misbehaves. ---
	"net.delay_response": {
		name: "net.delay_response", modes: []string{ModeFetch},
		summary: "stall every write on the Nth accepted connection",
		params:  "conn (0-based), delay",
		validate: func(sc *Scenario, ev *Event, i int) error {
			return needDelay(sc, ev, i)
		},
	},
	"net.corrupt_response": {
		name: "net.corrupt_response", modes: []string{ModeFetch},
		summary:  "flip one bit of the response frame at a byte offset (after the HELLO)",
		params:   "conn (0-based), offset (1-based byte of the post-HELLO stream)",
		validate: needPositiveOffset,
	},
	"net.truncate_response": {
		name: "net.truncate_response", modes: []string{ModeFetch},
		summary:  "close the connection mid-response at a byte offset (after the HELLO)",
		params:   "conn (0-based), offset (1-based byte of the post-HELLO stream)",
		validate: needPositiveOffset,
	},
	"net.corrupt_request": {
		name: "net.corrupt_request", modes: []string{ModeFetch},
		summary:  "flip one bit of the client's request at a byte offset",
		params:   "conn (0-based), offset (1-based)",
		validate: needPositiveOffset,
	},
	"net.reset_request": {
		name: "net.reset_request", modes: []string{ModeFetch},
		summary:  "reset the connection once N request bytes were read",
		params:   "conn (0-based), offset (1-based)",
		validate: needPositiveOffset,
	},
	"net.refuse_accepts": {
		name: "net.refuse_accepts", modes: []string{ModeFetch},
		summary: "fail the first N accepts with a temporary error",
		params:  "count (> 0)",
		validate: func(_ *Scenario, ev *Event, i int) error {
			if ev.Count <= 0 {
				return &SpecError{Field: evField(i, "count"), Msg: "a positive count is required"}
			}
			return nil
		},
	},
	"net.overload_storm": {
		name: "net.overload_storm", modes: []string{ModeFetch},
		summary: "saturate the probe's measurement slot and force `count` sheds, browning the probe out before the fetch",
		params:  "count (> 0 sheds; needs fetch max_inflight: 1, queue_budget >= 1, brownout_after in [1, count])",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if ev.Count <= 0 {
				return &SpecError{Field: evField(i, "count"), Msg: "a positive shed count is required"}
			}
			fs := sc.Fetch
			if fs == nil || fs.MaxInflight != 1 {
				return &SpecError{Field: evField(i, "action"), Msg: "net.overload_storm requires fetch.max_inflight: 1"}
			}
			if fs.QueueBudget < 1 {
				return &SpecError{Field: evField(i, "action"), Msg: "net.overload_storm requires fetch.queue_budget >= 1 so the fetch can queue"}
			}
			if fs.BrownoutAfter < 1 || fs.BrownoutAfter > ev.Count {
				return &SpecError{Field: evField(i, "action"), Msg: "net.overload_storm requires fetch.brownout_after in [1, count]"}
			}
			return nil
		},
	},

	// --- faultrun (campaign): a run cell misbehaves. ---
	"run.hang": {
		name: "run.hang", modes: []string{ModeCampaign},
		summary:  "block the cell's run until the supervisor's timeout abandons it",
		params:   "cell (\"p0/r1/b2\"), times (0 = every attempt)",
		validate: needCell,
	},
	"run.exit": {
		name: "run.exit", modes: []string{ModeCampaign},
		summary:  "fail the cell's run with a nonzero-exit error",
		params:   "cell, exit_code, times (1 = transient, 0 = deterministic), delay",
		validate: needCell,
	},
	"run.panic": {
		name: "run.panic", modes: []string{ModeCampaign},
		summary:  "panic inside the cell's run (recovered by the supervisor)",
		params:   "cell, times",
		validate: needCell,
	},
	"run.corrupt": {
		name: "run.corrupt", modes: []string{ModeCampaign},
		summary:  "return an impossible counter value from the cell's run",
		params:   "cell, event (counter name, empty = first), nan, times",
		validate: needCell,
	},
	"run.slow": {
		name: "run.slow", modes: []string{ModeCampaign},
		summary: "delay the cell's run, then let it proceed",
		params:  "cell, delay, times",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := needCell(sc, ev, i); err != nil {
				return err
			}
			return needDelay(sc, ev, i)
		},
	},

	// --- faultdata (campaign): poison the gathered measurement, then
	// compare against the clean one through evsel. ---
	"data.poison_samples": {
		name: "data.poison_samples", modes: []string{ModeCampaign},
		summary:  "replace a fraction of every event's samples with NaN/negatives",
		params:   "frac ((0, 1])",
		validate: needFrac,
	},
	"data.flatten_series": {
		name: "data.flatten_series", modes: []string{ModeCampaign},
		summary: "freeze one counter's samples to a constant (zero-variance trap)",
		params:  "event (counter name), value",
		validate: func(_ *Scenario, ev *Event, i int) error {
			if ev.Event == "" {
				return &SpecError{Field: evField(i, "event"), Msg: "a counter event name is required"}
			}
			return nil
		},
	},
	"data.inject_outliers": {
		name: "data.inject_outliers", modes: []string{ModeCampaign},
		summary:  "scale a fraction of samples by a large factor",
		params:   "frac ((0, 1]), factor",
		validate: needFrac,
	},

	// --- faultperf (collect, fleet): PMU weather over a time window.
	// Window times convert to engine cycles at the machine clock rate;
	// in fleet mode target \"*\" applies the weather uniformly. ---
	"perf.overrun_burst": {
		name: "perf.overrun_burst", modes: []string{ModeCollect, ModeFleet},
		summary: "drop every sampled record in [at, until) as buffer overruns",
		params:  "at, until (omit for unbounded), target (fleet: \"*\" or probe)",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := perfTarget(sc, ev, i); err != nil {
				return err
			}
			if ev.Until != 0 && ev.Until <= ev.At {
				return &SpecError{Field: evField(i, "until"), Msg: "the window must end after it starts (until > at)"}
			}
			return nil
		},
	},
	"perf.throttle_storm": {
		name: "perf.throttle_storm", modes: []string{ModeCollect, ModeFleet},
		summary:  "force interrupt throttling across [at, until)",
		params:   "at, until, target (fleet: \"*\" or probe)",
		validate: perfWindow,
	},
	"perf.observer_stall": {
		name: "perf.observer_stall", modes: []string{ModeCollect, ModeFleet},
		summary:  "stall PMI drains across [at, until) so the buffer backs up",
		params:   "at, until, target (fleet: \"*\" or probe)",
		validate: perfWindow,
	},
	"perf.starve": {
		name: "perf.starve", modes: []string{ModeCollect, ModeFleet},
		summary: "steal dwell slices from one threshold of the cycler",
		params:  "threshold (index), slices (> 0), target (fleet: \"*\" or probe)",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := perfTarget(sc, ev, i); err != nil {
				return err
			}
			if ev.Threshold < 0 {
				return &SpecError{Field: evField(i, "threshold"), Msg: "must be >= 0"}
			}
			if ev.Slices <= 0 {
				return &SpecError{Field: evField(i, "slices"), Msg: "a positive slice count is required"}
			}
			return nil
		},
	},

	// --- faultfleet (fleet): probes and the coordinator misbehave. ---
	"fleet.refuse_connects": {
		name: "fleet.refuse_connects", modes: []string{ModeFleet},
		summary: "make the probe's first N dials fail (partitioned probe)",
		params:  "target (probe), count (> 0)",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := needFleetTarget(sc, ev, i); err != nil {
				return err
			}
			if ev.Count <= 0 {
				return &SpecError{Field: evField(i, "count"), Msg: "a positive count is required"}
			}
			return nil
		},
	},
	"fleet.refuse_reconnects": {
		name: "fleet.refuse_reconnects", modes: []string{ModeFleet},
		summary:  "let the first dial through, refuse every reconnect",
		params:   "target (probe)",
		validate: needFleetTarget,
	},
	"fleet.drop_heartbeat": {
		name: "fleet.drop_heartbeat", modes: []string{ModeFleet},
		summary: "suppress one heartbeat beacon (transient silence)",
		params:  "target (probe), seq (1-based)",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := needFleetTarget(sc, ev, i); err != nil {
				return err
			}
			if ev.Seq < 1 {
				return &SpecError{Field: evField(i, "seq"), Msg: "seq is 1-based"}
			}
			return nil
		},
	},
	"fleet.silence_heartbeats": {
		name: "fleet.silence_heartbeats", modes: []string{ModeFleet},
		summary: "suppress every heartbeat from seq on (probe goes dark)",
		params:  "target (probe), seq (1-based)",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := needFleetTarget(sc, ev, i); err != nil {
				return err
			}
			if ev.Seq < 1 {
				return &SpecError{Field: evField(i, "seq"), Msg: "seq is 1-based"}
			}
			return nil
		},
	},
	"fleet.delay_request": {
		name: "fleet.delay_request", modes: []string{ModeFleet},
		summary: "stall the probe's Nth served request",
		params:  "target (probe), n (1-based), delay",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := needFleetTarget(sc, ev, i); err != nil {
				return err
			}
			if ev.N < 1 {
				return &SpecError{Field: evField(i, "n"), Msg: "n is 1-based"}
			}
			return needDelay(sc, ev, i)
		},
	},
	"fleet.delay_every_request": {
		name: "fleet.delay_every_request", modes: []string{ModeFleet},
		summary: "stall every request the probe serves (a slow probe)",
		params:  "target (probe), delay",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := needFleetTarget(sc, ev, i); err != nil {
				return err
			}
			return needDelay(sc, ev, i)
		},
	},
	"fleet.crash_request": {
		name: "fleet.crash_request", modes: []string{ModeFleet},
		summary: "crash the probe on its Nth request (stay_down: never restart)",
		params:  "target (probe), n (1-based), stay_down",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := needFleetTarget(sc, ev, i); err != nil {
				return err
			}
			if ev.N < 1 {
				return &SpecError{Field: evField(i, "n"), Msg: "n is 1-based"}
			}
			return nil
		},
	},
	"fleet.flap": {
		name: "fleet.flap", modes: []string{ModeFleet},
		summary:  "crash the probe on every request until strike accounting quarantines it",
		params:   "target (probe)",
		validate: needFleetTarget,
	},
	"fleet.overload_answers": {
		name: "fleet.overload_answers", modes: []string{ModeFleet},
		summary: "answer requests n..n+count-1 with an \"overloaded\" ERROR carrying a retry-after hint (backpressure, not probe death)",
		params:  "target (probe), n (1-based), count (> 0), retry_after",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := needFleetTarget(sc, ev, i); err != nil {
				return err
			}
			if ev.N < 1 {
				return &SpecError{Field: evField(i, "n"), Msg: "n is 1-based"}
			}
			if ev.Count <= 0 {
				return &SpecError{Field: evField(i, "count"), Msg: "a positive count is required"}
			}
			if ev.RetryAfter <= 0 {
				return &SpecError{Field: evField(i, "retry_after"), Msg: "a positive retry-after hint is required"}
			}
			return nil
		},
	},
	"fleet.kill_coordinator": {
		name: "fleet.kill_coordinator", modes: []string{ModeFleet},
		summary: "kill the coordinator mid-scatter or in a commit crash window",
		params:  "on_dispatch (1-based dispatch), or window (before_commit|after_write|torn) + n (cell index)",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if !sc.Fleet.Journal || !sc.Fleet.Resume {
				return &SpecError{Field: evField(i, "action"), Msg: "fleet.kill_coordinator requires fleet.journal and fleet.resume"}
			}
			switch {
			case ev.OnDispatch > 0 && ev.Window == "":
				return nil
			case ev.OnDispatch == 0 && ev.Window != "":
				switch ev.Window {
				case "before_commit", "after_write", "torn":
				default:
					return &SpecError{Field: evField(i, "window"), Msg: fmt.Sprintf("unknown crash window %q", ev.Window)}
				}
				if ev.N < 0 || ev.N >= maxInt(sc.Fleet.Campaign.Cells, 1) {
					return &SpecError{Field: evField(i, "n"), Msg: "cell index out of range"}
				}
				return nil
			default:
				return &SpecError{Field: evField(i, "on_dispatch"), Msg: "set exactly one of on_dispatch or window"}
			}
		},
	},

	// --- faultdisk (fleet): the disk under the crash journal
	// misbehaves. Faults count global 1-based occurrences of their
	// operation class across the journal's lifetime. ---
	"disk.enospc": {
		name: "disk.enospc", modes: []string{ModeFleet},
		summary:  "fail the journal's Nth write with ENOSPC (the disk fills up)",
		params:   "n (1-based journal write; needs fleet.journal)",
		validate: needDiskFault,
	},
	"disk.sync_fail": {
		name: "disk.sync_fail", modes: []string{ModeFleet},
		summary:  "fail the journal's Nth fsync with EIO (the durability barrier lies)",
		params:   "n (1-based journal fsync; needs fleet.journal)",
		validate: needDiskFault,
	},
	"disk.torn_write": {
		name: "disk.torn_write", modes: []string{ModeFleet},
		summary:  "land only half of the journal's Nth write, then kill the coordinator (a torn record)",
		params:   "n (1-based journal write; needs fleet.journal and fleet.resume)",
		validate: needDiskKill,
	},
	"disk.kill": {
		name: "disk.kill", modes: []string{ModeFleet},
		summary: "kill the coordinator at the journal's Nth disk operation of class `op` (crash windows including mid-rotation)",
		params:  "op (write|sync|create|syncdir), n (1-based; needs fleet.journal and fleet.resume)",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := needDiskKill(sc, ev, i); err != nil {
				return err
			}
			switch ev.Op {
			case "write", "sync", "create", "syncdir":
				return nil
			}
			return &SpecError{Field: evField(i, "op"), Msg: fmt.Sprintf("unknown journal operation %q (write, sync, create or syncdir)", ev.Op)}
		},
	},

	// --- assertions: evaluated against the stage outcome after the
	// run; `at` orders them on the report timeline. ---
	"assert.complete": {
		name: "assert.complete", modes: []string{ModeCampaign, ModeFleet},
		summary: "every cell completed, nothing quarantined",
		params:  "-", validate: noValidation,
	},
	"assert.gaps": {
		name: "assert.gaps", modes: []string{ModeCampaign, ModeFleet},
		summary: "exactly `count` cells ended as typed gaps",
		params:  "count", validate: noValidation,
	},
	"assert.retried": {
		name: "assert.retried", modes: []string{ModeCampaign},
		summary: "at least `min` retry attempts were taken",
		params:  "min", validate: needMin,
	},
	"assert.replayed": {
		name: "assert.replayed", modes: []string{ModeFleet},
		summary: "at least `min` cells were replayed from the resume journal",
		params:  "min",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if !sc.Fleet.Resume {
				return &SpecError{Field: evField(i, "action"), Msg: "assert.replayed requires fleet.resume: true"}
			}
			return needMin(sc, ev, i)
		},
	},
	"assert.truncated": {
		name: "assert.truncated", modes: []string{ModeFleet},
		summary: "the resume dropped a torn final journal record",
		params:  "-",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if !sc.Fleet.Resume {
				return &SpecError{Field: evField(i, "action"), Msg: "assert.truncated requires fleet.resume: true"}
			}
			return nil
		},
	},
	"assert.quarantined": {
		name: "assert.quarantined", modes: []string{ModeCampaign, ModeFleet},
		summary: "the named probe (fleet) or counter (campaign) was quarantined",
		params:  "target (probe ID or counter name)",
		validate: func(_ *Scenario, ev *Event, i int) error {
			if ev.Target == "" {
				return &SpecError{Field: evField(i, "target"), Msg: "a target is required"}
			}
			return nil
		},
	},
	"assert.coverage": {
		name: "assert.coverage", modes: []string{ModeFetch, ModeCollect, ModeFleet},
		summary:  "the histogram's sampling coverage lies in [min, max]",
		params:   "min, max (omit for 1)",
		validate: needMin,
	},
	"assert.records_dropped": {
		name: "assert.records_dropped", modes: []string{ModeCollect},
		summary: "the PMU script dropped at least `min` records",
		params:  "min", validate: needMin,
	},
	"assert.throttles": {
		name: "assert.throttles", modes: []string{ModeCollect},
		summary: "the PMU script fired at least `min` throttles",
		params:  "min", validate: needMin,
	},
	"assert.slices_starved": {
		name: "assert.slices_starved", modes: []string{ModeCollect},
		summary: "the PMU script starved at least `min` dwell slices",
		params:  "min", validate: needMin,
	},
	"assert.degraded": {
		name: "assert.degraded", modes: []string{ModeCampaign},
		summary: "the clean-vs-poisoned comparison carries diagnostics",
		params:  "-", validate: needDataStage,
	},
	"assert.hard_degraded": {
		name: "assert.hard_degraded", modes: []string{ModeCampaign},
		summary: "the comparison carries trust-breaking diagnostics",
		params:  "-", validate: needDataStage,
	},
	"assert.finite_render": {
		name: "assert.finite_render", modes: []string{ModeFetch, ModeCampaign, ModeCollect, ModeFleet},
		summary: "the human rendering of the outcome contains no NaN/Inf",
		params:  "-", validate: noValidation,
	},
	"assert.matches_reference": {
		name: "assert.matches_reference", modes: []string{ModeFetch, ModeFleet},
		summary: "the histogram is byte-identical to the locally computed reference",
		params:  "-", validate: noValidation,
	},
	"assert.brownout": {
		name: "assert.brownout", modes: []string{ModeFetch},
		summary:  "the stormed fetch was served at brownout fidelity with the honest render marker",
		params:   "-",
		validate: needOverloadStage,
	},
	"assert.backpressure": {
		name: "assert.backpressure", modes: []string{ModeFetch, ModeFleet},
		summary: "at least `min` requests were shed (fetch) or deferred (fleet) with retry-after hints",
		params:  "min",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if err := needOverloadStage(sc, ev, i); err != nil {
				return err
			}
			return needMin(sc, ev, i)
		},
	},
	"assert.journal": {
		name: "assert.journal", modes: []string{ModeFleet},
		summary: "the crash journal's end state: degraded (resume protection honestly lost) or clean (fsck-verified on disk)",
		params:  "equals (clean | degraded; needs fleet.journal)",
		validate: func(sc *Scenario, ev *Event, i int) error {
			if !sc.Fleet.Journal {
				return &SpecError{Field: evField(i, "action"), Msg: "assert.journal requires fleet.journal: true"}
			}
			switch ev.Equals {
			case "clean", "degraded":
				return nil
			}
			return &SpecError{Field: evField(i, "equals"), Msg: "must be clean or degraded"}
		},
	},
	"assert.origin": {
		name: "assert.origin", modes: []string{ModeFetch},
		summary: "the fetched histogram's origin tag",
		params:  "equals (local | probe | local-fallback)",
		validate: func(_ *Scenario, ev *Event, i int) error {
			switch ev.Equals {
			case "local", "probe", "local-fallback":
				return nil
			}
			return &SpecError{Field: evField(i, "equals"), Msg: "must be local, probe or local-fallback"}
		},
	},
}

// needDiskFault validates the non-crashing disk.* faults: they need a
// journal under the campaign and a 1-based occurrence count.
func needDiskFault(sc *Scenario, ev *Event, i int) error {
	if !sc.Fleet.Journal {
		return &SpecError{Field: evField(i, "action"), Msg: ev.Action + " requires fleet.journal: true"}
	}
	if ev.N < 1 {
		return &SpecError{Field: evField(i, "n"), Msg: "n is 1-based"}
	}
	return nil
}

// needDiskKill additionally requires resume: these faults kill the
// coordinator, so without a resumable journal the scenario cannot
// finish.
func needDiskKill(sc *Scenario, ev *Event, i int) error {
	if err := needDiskFault(sc, ev, i); err != nil {
		return err
	}
	if !sc.Fleet.Resume {
		return &SpecError{Field: evField(i, "action"), Msg: ev.Action + " requires fleet.resume: true"}
	}
	return nil
}

func needMin(_ *Scenario, ev *Event, i int) error {
	if ev.Min == nil {
		return &SpecError{Field: evField(i, "min"), Msg: "required"}
	}
	return nil
}

// needOverloadStage ties overload asserts to an actual overload fault:
// without a storm or scripted overload answers there is nothing shed
// to assert about.
func needOverloadStage(sc *Scenario, ev *Event, i int) error {
	for _, other := range sc.Events {
		if other.Action == "net.overload_storm" || other.Action == "fleet.overload_answers" {
			return nil
		}
	}
	return &SpecError{Field: evField(i, "action"), Msg: ev.Action + " requires a net.overload_storm or fleet.overload_answers fault event"}
}

// needDataStage ties degradation asserts to an actual data.* fault:
// without one there is no poisoned comparison to inspect.
func needDataStage(sc *Scenario, ev *Event, i int) error {
	for _, other := range sc.Events {
		if strings.HasPrefix(other.Action, "data.") {
			return nil
		}
	}
	return &SpecError{Field: evField(i, "action"), Msg: ev.Action + " requires a data.* fault event"}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
