package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenScenarios are the library entries whose reports are pinned
// byte-for-byte. One per deterministic stage kind: a campaign with a
// transient run fault, a collect under a perf throttle storm, a fleet
// campaign surviving a probe crash, and the two overload storms
// (single-probe brownout + recovery, fleet backpressure). Regenerate
// with
//
//	go test ./internal/scenario -run TestGoldenReports -update
//
// and review the diff: a golden change means the replayable report
// format (or the engine's determinism) changed.
var goldenScenarios = []string{
	"run-transient-exit",
	"perf-throttle-storm",
	"fleet-probe-crash",
	"overload-brownout-recovery",
	"fleet-overload-storm",
	"disk-journal-degraded",
}

func TestGoldenReports(t *testing.T) {
	for _, name := range goldenScenarios {
		t.Run(name, func(t *testing.T) {
			sc, err := Load(filepath.Join("..", "..", "scenarios", name+".yaml"))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(sc, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("scenario failed %d assertions:\n%s", res.Failed, res.Summary())
			}
			machine, err := res.Machine()
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, name+".report", machine)
			compareGolden(t, name+".summary", []byte(res.Summary()))

			state, err := ParseReport(machine)
			if err != nil {
				t.Fatalf("machine report does not re-parse: %v", err)
			}
			if state == nil || state.Truncated {
				t.Fatal("machine report parsed truncated or empty")
			}
			// Header plus one record per journalled row.
			if got := 1 + len(state.Records); got != len(res.Records) {
				t.Errorf("re-parsed %d records, result carries %d", got, len(res.Records))
			}
		})
	}
}

func compareGolden(t *testing.T, file string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", file)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden; run with -update and review the diff\ngot:\n%s\nwant:\n%s", file, got, want)
	}
}
