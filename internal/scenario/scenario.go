// Package scenario is the declarative chaos engine: one DSL over the
// five fault injectors. A scenario file (YAML subset or JSON) names a
// measurement stage — a remote fetch, a supervised counter campaign, a
// sampled histogram collection, or a fleet campaign — plus a timeline
// of events: timed faults ("at 2s: throttle storm", "at 5s: kill the
// coordinator mid-scatter") and timed assertions ("at 8s: assert
// histogram coverage ≥ 0.8"). The engine compiles the events onto the
// existing faultnet/faultrun/faultdata/faultperf/faultfleet Script
// APIs via per-injector adapters and drives a real campaign over
// internal/fleet and internal/campaign. Retry and backoff sleeps in
// the fetch and campaign stages advance a clockx fake clock instead of
// the wall clock; the fleet control plane runs on the tight real-time
// supervision windows its chaos suite established.
//
// Same seed + same scenario ⇒ a byte-identical machine-readable run
// report: CRC-framed JSON lines on the internal/journal format that
// record every injected fault, every assertion verdict and the merged
// SampleQuality/histogram outcome, plus a human-readable summary.
// Fields that depend on goroutine or fleet scheduling (dispatch
// counts, per-probe cell tallies) are deliberately excluded, the same
// split internal/fleet draws for its own Report.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"
	"unicode/utf8"
)

// ErrInvalid is the sentinel every scenario validation error unwraps
// to; syntax errors from the YAML/JSON layer do not.
var ErrInvalid = errors.New("scenario: invalid scenario")

// UnknownActionError reports an event action the registry does not
// know (or one that exists but is illegal in the scenario's mode).
type UnknownActionError struct {
	Action string
	Mode   string // non-empty when the action exists but not in Mode
}

func (e *UnknownActionError) Error() string {
	if e.Mode != "" {
		return fmt.Sprintf("scenario: action %q is not available in mode %q", e.Action, e.Mode)
	}
	return fmt.Sprintf("scenario: unknown action %q", e.Action)
}

func (e *UnknownActionError) Unwrap() error { return ErrInvalid }

// BadDurationError reports an unparseable or out-of-range duration.
type BadDurationError struct {
	Text string
}

func (e *BadDurationError) Error() string {
	return fmt.Sprintf("scenario: bad duration %q", e.Text)
}

func (e *BadDurationError) Unwrap() error { return ErrInvalid }

// DuplicateTargetError reports two fault events that arm the same
// exclusive fault on the same target (same action, same target, same
// cell/connection coordinate) — almost always a copy-paste mistake
// that would silently drop one of the two.
type DuplicateTargetError struct {
	Action string
	Target string
}

func (e *DuplicateTargetError) Error() string {
	return fmt.Sprintf("scenario: duplicate fault %q on target %q", e.Action, e.Target)
}

func (e *DuplicateTargetError) Unwrap() error { return ErrInvalid }

// SpecError reports any other validation failure, with the offending
// field path.
type SpecError struct {
	Field string
	Msg   string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("scenario: %s: %s", e.Field, e.Msg)
}

func (e *SpecError) Unwrap() error { return ErrInvalid }

// Duration is a time.Duration that marshals as a Go duration string
// ("150ms") and unmarshals from either a string or a number of
// seconds, so YAML authors can write "at: 2s" or "at: 2".
type Duration time.Duration

// D converts to the standard library type.
func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the canonical duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "150ms"-style strings and bare numbers of
// seconds; anything else is a typed *BadDurationError.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, perr := time.ParseDuration(s)
		if perr != nil || v < 0 {
			return &BadDurationError{Text: s}
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err == nil {
		if secs < 0 || secs > 1e6 {
			return &BadDurationError{Text: string(b)}
		}
		*d = Duration(time.Duration(secs * float64(time.Second)))
		return nil
	}
	return &BadDurationError{Text: string(b)}
}

// Event is one timeline entry: a fault to inject or an assertion to
// evaluate. The parameter fields form a union — each action consumes
// the subset its registry entry names and the loader rejects scenarios
// whose events set fields their action does not take.
type Event struct {
	At     Duration `json:"at,omitempty"`
	Action string   `json:"action"`
	Target string   `json:"target,omitempty"`

	// faultnet: connection coordinates and byte offsets.
	Conn   int   `json:"conn,omitempty"`
	Offset int64 `json:"offset,omitempty"`
	Count  int   `json:"count,omitempty"`

	// faultrun: cell keys ("p0/r1/b2") and fault shaping.
	Cell     string   `json:"cell,omitempty"`
	Times    int      `json:"times,omitempty"`
	ExitCode int      `json:"exit_code,omitempty"`
	Event    string   `json:"event,omitempty"`
	NaN      bool     `json:"nan,omitempty"`
	Delay    Duration `json:"delay,omitempty"`

	// faultdata: sample poisoning knobs.
	Frac   float64 `json:"frac,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	Value  float64 `json:"value,omitempty"`

	// faultperf: the window [at, until) on the measured timeline.
	Until     Duration `json:"until,omitempty"`
	Threshold int      `json:"threshold,omitempty"`
	Slices    int      `json:"slices,omitempty"`

	// faultfleet: request/heartbeat coordinates and crash windows.
	N          int      `json:"n,omitempty"`
	Seq        uint64   `json:"seq,omitempty"`
	StayDown   bool     `json:"stay_down,omitempty"`
	OnDispatch int      `json:"on_dispatch,omitempty"`
	Window     string   `json:"window,omitempty"`
	RetryAfter Duration `json:"retry_after,omitempty"`

	// faultdisk: which journal operation class a disk.kill crashes in
	// (write, sync, create or syncdir); the disk.* faults share N as
	// their 1-based occurrence count.
	Op string `json:"op,omitempty"`

	// assertions.
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
	Equals string   `json:"equals,omitempty"`
}

// FetchSpec configures a "fetch" scenario: one retrying remote
// histogram fetch against an in-process probe server whose listener is
// wrapped by the faultnet injector.
type FetchSpec struct {
	Workload      string   `json:"workload"`
	Machine       string   `json:"machine,omitempty"`
	Threads       int      `json:"threads,omitempty"`
	Bounds        []uint64 `json:"bounds,omitempty"`
	Reps          int      `json:"reps,omitempty"`
	Retries       int      `json:"retries,omitempty"`
	Timeout       Duration `json:"timeout,omitempty"`
	FallbackLocal bool     `json:"fallback_local,omitempty"`
	// MaxInflight, QueueBudget and BrownoutAfter configure the probe
	// server's request-level admission control (zero MaxInflight leaves
	// it off, the legacy byte-identical path). The net.overload_storm
	// action requires max_inflight: 1 so the storm's single hog request
	// deterministically saturates the probe.
	MaxInflight   int `json:"max_inflight,omitempty"`
	QueueBudget   int `json:"queue_budget,omitempty"`
	BrownoutAfter int `json:"brownout_after,omitempty"`
}

// CampaignSpec configures a "campaign" scenario: a supervised
// internal/campaign run whose cells the faultrun injector disrupts and
// whose first-point measurement the faultdata injector may poison for
// an evsel comparison stage.
type CampaignSpec struct {
	Workload   string   `json:"workload"`
	Machine    string   `json:"machine,omitempty"`
	Threads    []int    `json:"threads,omitempty"`
	Events     []string `json:"events"`
	Reps       int      `json:"reps,omitempty"`
	Mode       string   `json:"counter_mode,omitempty"`
	Workers    int      `json:"workers,omitempty"`
	KeepGoing  bool     `json:"keep_going,omitempty"`
	MaxRetries int      `json:"max_retries,omitempty"`
	RunTimeout Duration `json:"run_timeout,omitempty"`
}

// CollectSpec configures a "collect" scenario: one memhist.Collect
// under the lossy sampler, with faultperf PMU weather compiled from
// the timeline (event times convert to engine cycles at the machine's
// clock rate).
type CollectSpec struct {
	Workload       string   `json:"workload"`
	Machine        string   `json:"machine,omitempty"`
	Threads        int      `json:"threads,omitempty"`
	Bounds         []uint64 `json:"bounds,omitempty"`
	SliceCycles    uint64   `json:"slice_cycles,omitempty"`
	Reps           int      `json:"reps,omitempty"`
	Adaptive       bool     `json:"adaptive,omitempty"`
	BufferCap      int      `json:"buffer_cap,omitempty"`
	ThrottleLimit  uint64   `json:"throttle_limit,omitempty"`
	ThrottleWindow uint64   `json:"throttle_window,omitempty"`
	Chunk          int      `json:"chunk,omitempty"`
}

// Template is one weighted fleet-generator template. Besides its
// weight it may bake fault behaviour into every probe stamped from it.
type Template struct {
	Name           string   `json:"name"`
	Weight         int      `json:"weight"`
	CrashOnRequest int      `json:"crash_on_request,omitempty"`
	StayDown       bool     `json:"stay_down,omitempty"`
	Flap           bool     `json:"flap,omitempty"`
	SilenceFrom    uint64   `json:"silence_from,omitempty"`
	DelayRequests  Duration `json:"delay_requests,omitempty"`
}

// GenSpec is the seeded fleet generator: Count probes stamped from the
// weighted templates, named Prefix-0..Count-1. The template draw is a
// pure function of the scenario seed, so the generated fleet is part
// of the deterministic report.
type GenSpec struct {
	Count     int        `json:"count"`
	Prefix    string     `json:"prefix,omitempty"`
	Templates []Template `json:"templates"`
}

// ChaosSpec applies seeded background chaos on top of the resolved
// fleet: each probe independently draws against each rate, in probe
// order, from the scenario seed.
type ChaosSpec struct {
	CrashRate   float64 `json:"crash_rate,omitempty"`
	SilenceRate float64 `json:"silence_rate,omitempty"`
	DelayRate   float64 `json:"delay_rate,omitempty"`
}

// FleetCampaign is the measurement the fleet scatters: the same shape
// fleet.Spec takes.
type FleetCampaign struct {
	Workload    string   `json:"workload"`
	Machine     string   `json:"machine,omitempty"`
	Threads     int      `json:"threads,omitempty"`
	Bounds      []uint64 `json:"bounds,omitempty"`
	SliceCycles uint64   `json:"slice_cycles,omitempty"`
	Adaptive    bool     `json:"adaptive,omitempty"`
	Exact       bool     `json:"exact,omitempty"`
	Cells       int      `json:"cells,omitempty"`
	RepsPerCell int      `json:"reps_per_cell,omitempty"`
}

// FleetSpec configures a "fleet" scenario: a real coordinator plus
// in-process probe agents over loopback TCP, all paced on the shared
// fake clock, with faultfleet scripts compiled from the timeline.
type FleetSpec struct {
	Probes   []string      `json:"probes,omitempty"`
	Gen      *GenSpec      `json:"gen,omitempty"`
	Chaos    *ChaosSpec    `json:"chaos,omitempty"`
	Campaign FleetCampaign `json:"campaign"`

	Heartbeat    Duration `json:"heartbeat,omitempty"`
	SuspectAfter Duration `json:"suspect_after,omitempty"`
	DeadAfter    Duration `json:"dead_after,omitempty"`
	ProbeStrikes int      `json:"probe_strikes,omitempty"`
	CellTimeout  Duration `json:"cell_timeout,omitempty"`
	MaxRetries   int      `json:"max_retries,omitempty"`
	KeepGoing    bool     `json:"keep_going,omitempty"`

	// Journal runs the campaign over a crash journal in a scratch
	// directory; Resume restarts a killed coordinator against that
	// journal and re-scatters only the missing cells. Resume requires
	// Journal and a fleet.kill_coordinator or disk.kill event.
	Journal bool `json:"journal,omitempty"`
	Resume  bool `json:"resume,omitempty"`
	// SegmentBytes rotates the journal into checkpointed segments once
	// the live tail passes this many bytes (1 rotates on every append —
	// the tightest crash-window schedule). Zero keeps the single-file
	// layout. Requires Journal.
	SegmentBytes int `json:"segment_bytes,omitempty"`
}

// Scenario is a parsed, validated scenario file.
type Scenario struct {
	Name        string        `json:"name"`
	Description string        `json:"description,omitempty"`
	Mode        string        `json:"mode"`
	Seed        int64         `json:"seed,omitempty"`
	Fetch       *FetchSpec    `json:"fetch,omitempty"`
	Campaign    *CampaignSpec `json:"campaign,omitempty"`
	Collect     *CollectSpec  `json:"collect,omitempty"`
	Fleet       *FleetSpec    `json:"fleet,omitempty"`
	Events      []Event       `json:"events"`
}

// Modes the engine knows, each keyed to the stage it drives.
const (
	ModeFetch    = "fetch"
	ModeCampaign = "campaign"
	ModeCollect  = "collect"
	ModeFleet    = "fleet"
)

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(raw)
}

// Parse parses a scenario from YAML-subset or JSON bytes (JSON is any
// input whose first non-space byte is '{') and validates it.
func Parse(raw []byte) (*Scenario, error) {
	if !utf8.Valid(raw) {
		return nil, &SyntaxError{1, "input is not valid UTF-8"}
	}
	trimmed := strings.TrimLeft(string(raw), " \t\r\n")
	var doc any
	if strings.HasPrefix(trimmed, "{") {
		dec := json.NewDecoder(strings.NewReader(trimmed))
		if err := dec.Decode(&doc); err != nil {
			return nil, &SyntaxError{1, fmt.Sprintf("json: %v", err)}
		}
		if dec.More() {
			return nil, &SyntaxError{1, "trailing content after JSON document"}
		}
	} else {
		var err error
		doc, err = parseYAML(raw)
		if err != nil {
			return nil, err
		}
	}
	// Round-trip through JSON so YAML and JSON inputs decode through
	// the identical strict path (unknown fields rejected).
	bridge, err := json.Marshal(doc)
	if err != nil {
		return nil, &SyntaxError{1, fmt.Sprintf("cannot normalise document: %v", err)}
	}
	var sc Scenario
	dec := json.NewDecoder(strings.NewReader(string(bridge)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		var bad *BadDurationError
		if errors.As(err, &bad) {
			return nil, bad
		}
		return nil, &SpecError{Field: "document", Msg: err.Error()}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Validate checks the scenario against the action registry and the
// mode's structural requirements.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return &SpecError{Field: "name", Msg: "required"}
	}
	if strings.ContainsAny(sc.Name, " \t\n") {
		return &SpecError{Field: "name", Msg: "must not contain whitespace"}
	}
	switch sc.Mode {
	case ModeFetch:
		if sc.Fetch == nil {
			return &SpecError{Field: "fetch", Msg: "required in mode \"fetch\""}
		}
		if sc.Campaign != nil || sc.Collect != nil || sc.Fleet != nil {
			return &SpecError{Field: "mode", Msg: "mode \"fetch\" allows only the fetch block"}
		}
		if err := sc.Fetch.validate(); err != nil {
			return err
		}
	case ModeCampaign:
		if sc.Campaign == nil {
			return &SpecError{Field: "campaign", Msg: "required in mode \"campaign\""}
		}
		if sc.Fetch != nil || sc.Collect != nil || sc.Fleet != nil {
			return &SpecError{Field: "mode", Msg: "mode \"campaign\" allows only the campaign block"}
		}
		if err := sc.Campaign.validate(); err != nil {
			return err
		}
	case ModeCollect:
		if sc.Collect == nil {
			return &SpecError{Field: "collect", Msg: "required in mode \"collect\""}
		}
		if sc.Fetch != nil || sc.Campaign != nil || sc.Fleet != nil {
			return &SpecError{Field: "mode", Msg: "mode \"collect\" allows only the collect block"}
		}
		if err := sc.Collect.validate(); err != nil {
			return err
		}
	case ModeFleet:
		if sc.Fleet == nil {
			return &SpecError{Field: "fleet", Msg: "required in mode \"fleet\""}
		}
		if sc.Fetch != nil || sc.Campaign != nil || sc.Collect != nil {
			return &SpecError{Field: "mode", Msg: "mode \"fleet\" allows only the fleet block"}
		}
		if err := sc.Fleet.validate(); err != nil {
			return err
		}
	case "":
		return &SpecError{Field: "mode", Msg: "required (fetch, campaign, collect or fleet)"}
	default:
		return &SpecError{Field: "mode", Msg: fmt.Sprintf("unknown mode %q", sc.Mode)}
	}
	if len(sc.Events) == 0 {
		return &SpecError{Field: "events", Msg: "at least one event required"}
	}
	if len(sc.Events) > 256 {
		return &SpecError{Field: "events", Msg: "too many events (max 256)"}
	}
	seen := make(map[string]bool, len(sc.Events))
	for i := range sc.Events {
		ev := &sc.Events[i]
		act, ok := lookupAction(ev.Action)
		if !ok {
			return &UnknownActionError{Action: ev.Action}
		}
		if !act.allowsMode(sc.Mode) {
			return &UnknownActionError{Action: ev.Action, Mode: sc.Mode}
		}
		if err := act.validate(sc, ev, i); err != nil {
			return err
		}
		if !strings.HasPrefix(ev.Action, "assert.") {
			key := fmt.Sprintf("%s|%s|%s|%d", ev.Action, ev.Target, ev.Cell, ev.Conn)
			if seen[key] {
				target := ev.Target
				if target == "" {
					target = ev.Cell
				}
				if target == "" {
					target = fmt.Sprintf("conn %d", ev.Conn)
				}
				return &DuplicateTargetError{Action: ev.Action, Target: target}
			}
			seen[key] = true
		}
	}
	return nil
}

func validateWorkload(field, name string) error {
	if name == "" {
		return &SpecError{Field: field, Msg: "workload required"}
	}
	return nil
}

func validateBounds(field string, bounds []uint64) error {
	if len(bounds) == 1 {
		return &SpecError{Field: field, Msg: "bounds need at least two thresholds"}
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return &SpecError{Field: field, Msg: "bounds must be strictly increasing"}
		}
	}
	return nil
}

func (f *FetchSpec) validate() error {
	if err := validateWorkload("fetch.workload", f.Workload); err != nil {
		return err
	}
	if err := validateBounds("fetch.bounds", f.Bounds); err != nil {
		return err
	}
	if f.Retries < 0 || f.Retries > 16 {
		return &SpecError{Field: "fetch.retries", Msg: "must be in [0, 16]"}
	}
	if f.MaxInflight < 0 || f.MaxInflight > 64 {
		return &SpecError{Field: "fetch.max_inflight", Msg: "must be in [0, 64]"}
	}
	if f.QueueBudget < 0 || f.QueueBudget > 64 {
		return &SpecError{Field: "fetch.queue_budget", Msg: "must be in [0, 64]"}
	}
	if f.BrownoutAfter < 0 {
		return &SpecError{Field: "fetch.brownout_after", Msg: "must be >= 0"}
	}
	if f.MaxInflight == 0 && (f.QueueBudget > 0 || f.BrownoutAfter > 0) {
		return &SpecError{Field: "fetch.max_inflight", Msg: "queue_budget and brownout_after need max_inflight > 0"}
	}
	return nil
}

func (c *CampaignSpec) validate() error {
	if err := validateWorkload("campaign.workload", c.Workload); err != nil {
		return err
	}
	if len(c.Events) == 0 {
		return &SpecError{Field: "campaign.events", Msg: "at least one counter event required"}
	}
	for _, th := range c.Threads {
		if th < 1 || th > 64 {
			return &SpecError{Field: "campaign.threads", Msg: "thread counts must be in [1, 64]"}
		}
	}
	switch c.Mode {
	case "", "batched", "multiplexed", "unlimited":
	default:
		return &SpecError{Field: "campaign.counter_mode", Msg: fmt.Sprintf("unknown mode %q", c.Mode)}
	}
	if c.Workers < 0 || c.Workers > 16 {
		return &SpecError{Field: "campaign.workers", Msg: "must be in [0, 16]"}
	}
	if c.Reps < 0 || c.Reps > 64 {
		return &SpecError{Field: "campaign.reps", Msg: "must be in [0, 64]"}
	}
	return nil
}

func (c *CollectSpec) validate() error {
	if err := validateWorkload("collect.workload", c.Workload); err != nil {
		return err
	}
	if err := validateBounds("collect.bounds", c.Bounds); err != nil {
		return err
	}
	if c.Reps < 0 || c.Reps > 16 {
		return &SpecError{Field: "collect.reps", Msg: "must be in [0, 16]"}
	}
	return nil
}

func (f *FleetSpec) validate() error {
	if err := validateWorkload("fleet.campaign.workload", f.Campaign.Workload); err != nil {
		return err
	}
	if err := validateBounds("fleet.campaign.bounds", f.Campaign.Bounds); err != nil {
		return err
	}
	if f.Campaign.Cells < 0 || f.Campaign.Cells > 256 {
		return &SpecError{Field: "fleet.campaign.cells", Msg: "must be in [0, 256]"}
	}
	if len(f.Probes) == 0 && f.Gen == nil {
		return &SpecError{Field: "fleet.probes", Msg: "name probes or configure the generator"}
	}
	seen := map[string]bool{}
	for _, id := range f.Probes {
		if id == "" || strings.ContainsAny(id, " \t\n") {
			return &SpecError{Field: "fleet.probes", Msg: "probe IDs must be non-empty and whitespace-free"}
		}
		if seen[id] {
			return &DuplicateTargetError{Action: "fleet.probes", Target: id}
		}
		seen[id] = true
	}
	if f.Gen != nil {
		if f.Gen.Count < 1 || f.Gen.Count > 64 {
			return &SpecError{Field: "fleet.gen.count", Msg: "must be in [1, 64]"}
		}
		if len(f.Gen.Templates) == 0 {
			return &SpecError{Field: "fleet.gen.templates", Msg: "at least one template required"}
		}
		total := 0
		names := map[string]bool{}
		for _, t := range f.Gen.Templates {
			if t.Name == "" {
				return &SpecError{Field: "fleet.gen.templates", Msg: "template name required"}
			}
			if names[t.Name] {
				return &DuplicateTargetError{Action: "fleet.gen.templates", Target: t.Name}
			}
			names[t.Name] = true
			if t.Weight < 0 {
				return &SpecError{Field: "fleet.gen.templates", Msg: "weights must be non-negative"}
			}
			total += t.Weight
		}
		if total <= 0 {
			return &SpecError{Field: "fleet.gen.templates", Msg: "total weight must be positive"}
		}
	}
	if f.Chaos != nil {
		for _, r := range []struct {
			name string
			v    float64
		}{
			{"crash_rate", f.Chaos.CrashRate},
			{"silence_rate", f.Chaos.SilenceRate},
			{"delay_rate", f.Chaos.DelayRate},
		} {
			if r.v < 0 || r.v > 1 {
				return &SpecError{Field: "fleet.chaos." + r.name, Msg: "rates must be in [0, 1]"}
			}
		}
	}
	if f.Resume && !f.Journal {
		return &SpecError{Field: "fleet.resume", Msg: "resume requires journal: true"}
	}
	if f.SegmentBytes < 0 {
		return &SpecError{Field: "fleet.segment_bytes", Msg: "must be >= 0"}
	}
	if f.SegmentBytes > 0 && !f.Journal {
		return &SpecError{Field: "fleet.segment_bytes", Msg: "segment rotation requires journal: true"}
	}
	return nil
}

// probeIDs resolves the full, ordered probe roster (explicit probes
// first, then generated ones).
func (f *FleetSpec) probeIDs() []string {
	ids := append([]string(nil), f.Probes...)
	if f.Gen != nil {
		prefix := f.Gen.Prefix
		if prefix == "" {
			prefix = "gen"
		}
		for i := 0; i < f.Gen.Count; i++ {
			ids = append(ids, fmt.Sprintf("%s-%d", prefix, i))
		}
	}
	return ids
}
