package campaign

import (
	"fmt"
	"testing"

	"numaperf/internal/perf"
)

// benchSpec is a Fig. 9-style thread sweep: the same scan workload
// measured in Batched mode across four thread counts. Each of its run
// cells is CPU-bound and independent, the shape the parallel executor
// is built for.
func benchSpec() Spec {
	return Spec{
		ParamName: "threads",
		Points: []Point{
			testPoint(1, 1), testPoint(2, 2), testPoint(4, 4), testPoint(8, 8),
		},
		Events: testEvents,
		Reps:   2,
		Mode:   perf.Batched,
		Seed:   23,
	}
}

// BenchmarkFig9StyleSweep measures one whole sweep campaign per
// iteration at several worker counts. The ns/op ratio between
// parallel=1 and parallel=4 is the executor's wall-clock speedup — on a
// ≥4-core machine it must reach ≥2×; on fewer cores the parallel rows
// simply match the serial one.
func BenchmarkFig9StyleSweep(b *testing.B) {
	for _, conc := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel=%d", conc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := &Runner{Spec: benchSpec(), Opts: Options{Concurrency: conc}}
				if _, err := r.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
