// Determinism equivalence suite for the concurrent cell executor: the
// same campaign run at Concurrency 1, 2 and 8 must produce
// byte-identical journals, Reports, quarantine verdicts and rendered
// Compare/Correlate tables — including across a kill-and-resume cycle.
// Run under -race; the CI does.
package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"numaperf/internal/counters"
	"numaperf/internal/evsel"
)

// runAt executes spec at the given concurrency with a journal and
// returns the report plus the journal's raw bytes.
func runAt(t *testing.T, spec Spec, conc int, opts Options) (*Report, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.journal")
	opts.JournalPath = path
	opts.Concurrency = conc
	opts.Sleep = noSleep
	rep, err := (&Runner{Spec: spec, Opts: opts}).Run()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return rep, raw
}

// renderAll concatenates every human-facing view of a report: the
// summary (gaps, quarantine verdicts, accounting), each point's saved
// measurement, the Compare table between the sweep's endpoints, and the
// correlation table over the full sweep.
func renderAll(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(rep.Summary())
	for _, p := range rep.Points {
		buf.Write(saveBytes(t, p.M))
	}
	cmp, err := evsel.Compare(rep.Points[0].M, rep.Points[len(rep.Points)-1].M)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(cmp.Render())
	sw := &evsel.Sweep{ParamName: rep.ParamName}
	for _, p := range rep.Points {
		sw.Points = append(sw.Points, evsel.SweepPoint{Param: p.Param, M: p.M})
	}
	buf.WriteString(sw.Render(0))
	return buf.Bytes()
}

// equivWrap makes the campaign exercise every commit path while staying
// deterministic at any worker count: one cell fails transiently (a
// retry), one cell fails persistently (a gap under KeepGoing), and one
// event is corrupted in every cell (strikes → a quarantine verdict).
// The wrap is called from concurrent pool workers, hence the mutex.
func equivWrap() Middleware {
	var mu sync.Mutex
	fired := map[string]bool{}
	return func(next RunFunc) RunFunc {
		return func(c Cell) (map[counters.EventID]float64, error) {
			key := c.Key()
			mu.Lock()
			transient := c.Point == 1 && c.Rep == 1 && c.Batch == 0 && !fired[key]
			if transient {
				fired[key] = true
			}
			mu.Unlock()
			if transient {
				return nil, errors.New("transient glitch")
			}
			if c.Point == 2 && c.Rep == 2 && c.Batch == 0 {
				return nil, errors.New("persistent failure")
			}
			out, err := next(c)
			if err == nil {
				if v, ok := out[counters.L1Hit]; ok {
					out[counters.L1Hit] = -v - 1
				}
			}
			return out, err
		}
	}
}

func equivSpec() Spec {
	spec := testSpec(testPoint(1, 1), testPoint(2, 2), testPoint(4, 4))
	spec.Reps = 3
	return spec
}

func TestConcurrencyEquivalence(t *testing.T) {
	opts := func() Options {
		return Options{KeepGoing: true, Wrap: equivWrap()}
	}
	refRep, refJnl := runAt(t, equivSpec(), 1, opts())
	if refRep.Retried == 0 || len(refRep.Gaps) == 0 || len(refRep.Quarantined) == 0 {
		t.Fatalf("reference campaign did not exercise retry+gap+quarantine: %s", refRep.Summary())
	}
	refView := renderAll(t, refRep)
	for _, conc := range []int{2, 8} {
		t.Run(fmt.Sprintf("concurrency=%d", conc), func(t *testing.T) {
			rep, jnl := runAt(t, equivSpec(), conc, opts())
			if !bytes.Equal(jnl, refJnl) {
				t.Errorf("journal differs from serial run:\ngot:\n%s\nwant:\n%s", jnl, refJnl)
			}
			if view := renderAll(t, rep); !bytes.Equal(view, refView) {
				t.Errorf("rendered report differs from serial run:\ngot:\n%s\nwant:\n%s", view, refView)
			}
			if rep.Ran != refRep.Ran || rep.Replayed != refRep.Replayed || rep.Retried != refRep.Retried {
				t.Errorf("accounting differs: ran %d/%d, replayed %d/%d, retried %d/%d",
					rep.Ran, refRep.Ran, rep.Replayed, refRep.Replayed, rep.Retried, refRep.Retried)
			}
		})
	}
}

// TestParallelKillAndResume is the parallel acceptance test: a
// Concurrency=8 campaign killed mid-flight leaves a journal that is a
// clean prefix of the serial journal, and resuming it (again at
// Concurrency=8) yields a journal and measurements byte-identical to an
// uninterrupted serial run.
func TestParallelKillAndResume(t *testing.T) {
	spec := testSpec(testPoint(1, 1), testPoint(2, 2), testPoint(4, 4))

	refRep, refJnl := runAt(t, spec, 1, Options{})

	path := filepath.Join(t.TempDir(), "campaign.journal")
	kill := func(next RunFunc) RunFunc {
		return func(c Cell) (map[counters.EventID]float64, error) {
			if c.Point == 1 && c.Rep == 1 {
				return nil, errors.New("injected kill")
			}
			return next(c)
		}
	}
	_, err := (&Runner{Spec: spec, Opts: Options{
		JournalPath: path, Concurrency: 8, MaxRetries: -1, Sleep: noSleep, Wrap: kill,
	}}).Run()
	var ce *CampaignError
	if !errors.As(err, &ce) {
		t.Fatalf("expected abort, got %v", err)
	}
	partial, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) == 0 || !bytes.HasPrefix(refJnl, partial) {
		t.Error("aborted parallel journal is not a clean prefix of the serial journal")
	}

	rep, err := (&Runner{Spec: spec, Opts: Options{
		JournalPath: path, Resume: true, Concurrency: 8, Sleep: noSleep,
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed == 0 || rep.Ran == 0 {
		t.Errorf("resume accounting: %d replayed, %d ran; want both > 0", rep.Replayed, rep.Ran)
	}
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, refJnl) {
		t.Errorf("resumed parallel journal differs from serial journal:\ngot:\n%s\nwant:\n%s", final, refJnl)
	}
	for i := range refRep.Points {
		if !bytes.Equal(saveBytes(t, rep.Points[i].M), saveBytes(t, refRep.Points[i].M)) {
			t.Errorf("point %d differs after parallel kill-and-resume", i)
		}
	}
}

// TestParallelSpeedup checks that the pool actually overlaps cell
// execution when cores are available. The precise ≥2× at -parallel 4
// claim lives in BenchmarkFig9StyleSweep output; this guard uses a
// laxer threshold so scheduler noise cannot flake CI.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement, skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("needs ≥ 4 CPUs to demonstrate speedup, have %d", runtime.NumCPU())
	}
	spec := benchSpec()
	elapsed := func(conc int) time.Duration {
		start := time.Now()
		if _, err := (&Runner{Spec: spec, Opts: Options{Concurrency: conc}}).Run(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := elapsed(1)
	parallel := elapsed(4)
	ratio := float64(serial) / float64(parallel)
	t.Logf("serial %v, parallel(4) %v, speedup %.2fx", serial, parallel, ratio)
	if ratio < 1.5 {
		t.Errorf("speedup %.2fx at Concurrency=4, want ≥ 1.5x", ratio)
	}
}
