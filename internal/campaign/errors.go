package campaign

import (
	"errors"
	"fmt"
	"time"

	"numaperf/internal/exec"
)

// TimeoutError reports a run that exceeded the supervisor's wall-clock
// budget. The run goroutine is abandoned (its result, if any, is
// discarded), so a hung workload can never stall a campaign.
type TimeoutError struct {
	After time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("campaign: run timed out after %s", e.After)
}

// PanicError reports a panic recovered from a supervised run.
type PanicError struct {
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("campaign: run panicked: %v", e.Value)
}

// ValueError reports an impossible counter value (negative or
// non-finite) returned by a run. The sample is discarded and counts as
// a strike against the event.
type ValueError struct {
	Event string
	Value float64
}

func (e *ValueError) Error() string {
	return fmt.Sprintf("campaign: impossible value %g for event %s", e.Value, e.Event)
}

// CellError wraps the final error of a run cell after all retries were
// exhausted.
type CellError struct {
	Cell     Cell
	Attempts int
	Err      error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("campaign: cell %s failed after %d attempt(s): %v", e.Cell.Key(), e.Attempts, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// CampaignError aborts a campaign (KeepGoing disabled) at a failed
// cell. Cells completed before the abort remain in the journal, so a
// later -resume continues from exactly this point.
type CampaignError struct {
	Cell Cell
	Err  error
}

func (e *CampaignError) Error() string {
	return fmt.Sprintf("campaign: aborted at cell %s: %v", e.Cell.Key(), e.Err)
}

func (e *CampaignError) Unwrap() error { return e.Err }

// ErrJournalExists rejects starting a fresh campaign over a non-empty
// journal without Resume: silently overwriting completed cells would be
// data loss.
var ErrJournalExists = errors.New("campaign: journal already exists (resume it or remove it)")

// ErrJournalCorrupt marks an integrity failure in the body of a
// journal: a CRC mismatch or undecodable record before the final line.
// (A torn final record is expected after a crash and is dropped
// silently.)
var ErrJournalCorrupt = errors.New("campaign: journal corrupt")

// ErrJournalMismatch rejects resuming a journal whose header does not
// match the campaign spec — mixing cells from two different campaigns
// would fabricate measurements.
var ErrJournalMismatch = errors.New("campaign: journal does not match the campaign spec")

// ErrJournalDegraded marks a campaign stopped by a journal disk fault
// under Options.StrictJournal: failing fast beats silently losing the
// crash-resume guarantee. Without StrictJournal the campaign finishes
// in memory instead and the report carries JournalDegraded.
var ErrJournalDegraded = errors.New("campaign: journal degraded")

// retryable reports whether re-running a failed cell could help. The
// simulator is deterministic, so a run that exceeded its op budget will
// exceed it again; everything else (timeouts, panics, exits injected by
// a flaky environment) is worth the retries the options allow.
func retryable(err error) bool {
	return !errors.Is(err, exec.ErrOpBudget)
}
