package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numaperf/internal/journal"
)

func testHeader() *journalHeader {
	return &journalHeader{
		Kind: "header", Version: journalVersion,
		ParamName: "threads", Params: []float64{1, 2},
		Events: []string{"A", "B"}, Reps: 2, Mode: "batched", Seed: 7,
	}
}

func writeJournal(t *testing.T, records ...any) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "j")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := journal.NewWriter(f)
	for _, r := range records {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJournalRoundTrip(t *testing.T) {
	path := writeJournal(t,
		testHeader(),
		&cellRecord{Kind: "cell", Key: "p0/r0/b0",
			Samples: map[string]float64{"A": 1.5}, Bad: map[string]string{"B": "impossible"}},
		&gapRecord{Kind: "gap", Key: "p0/r1/b0", Error: "boom", Events: []string{"A", "B"}},
	)
	st, _, err := loadJournal(journal.OSFS, path)
	if err != nil {
		t.Fatal(err)
	}
	if st.truncated {
		t.Error("clean journal reported truncated")
	}
	if st.completed() != 2 {
		t.Errorf("completed = %d, want 2", st.completed())
	}
	c := st.cells["p0/r0/b0"]
	if c == nil || c.Samples["A"] != 1.5 || c.Bad["B"] != "impossible" {
		t.Errorf("cell record = %+v", c)
	}
	g := st.gaps["p0/r1/b0"]
	if g == nil || g.Error != "boom" || len(g.Events) != 2 {
		t.Errorf("gap record = %+v", g)
	}
	if err := st.header.matches(testHeader()); err != nil {
		t.Errorf("header mismatch against itself: %v", err)
	}
}

func TestJournalMissingAndEmpty(t *testing.T) {
	st, _, err := loadJournal(journal.OSFS, filepath.Join(t.TempDir(), "nope"))
	if st != nil || err != nil {
		t.Errorf("missing file: (%v, %v)", st, err)
	}
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	st, _, err = loadJournal(journal.OSFS, path)
	if st != nil || err != nil {
		t.Errorf("empty file: (%v, %v)", st, err)
	}
}

func TestJournalTornFinalRecord(t *testing.T) {
	path := writeJournal(t, testHeader(),
		&cellRecord{Kind: "cell", Key: "p0/r0/b0", Samples: map[string]float64{"A": 1}},
		&cellRecord{Kind: "cell", Key: "p0/r1/b0", Samples: map[string]float64{"A": 2}},
	)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the final record mid-payload: the crash-mid-write signature.
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	st, _, err := loadJournal(journal.OSFS, path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.truncated {
		t.Error("torn tail not flagged")
	}
	if st.completed() != 1 {
		t.Errorf("completed = %d, want 1 (torn record dropped)", st.completed())
	}
	if _, ok := st.cells["p0/r1/b0"]; ok {
		t.Error("torn record was kept")
	}
}

// A verified final record that merely lost its trailing newline is
// kept: only an actually-damaged tail is dropped.
func TestJournalFinalRecordWithoutNewline(t *testing.T) {
	path := writeJournal(t, testHeader(),
		&cellRecord{Kind: "cell", Key: "p0/r0/b0", Samples: map[string]float64{"A": 1}},
	)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	st, _, err := loadJournal(journal.OSFS, path)
	if err != nil {
		t.Fatal(err)
	}
	if st.truncated || st.completed() != 1 {
		t.Errorf("intact newline-less tail: truncated=%v completed=%d", st.truncated, st.completed())
	}
}

func TestJournalCorruptionFailsLoudly(t *testing.T) {
	path := writeJournal(t, testHeader(),
		&cellRecord{Kind: "cell", Key: "p0/r0/b0", Samples: map[string]float64{"A": 1}},
		&cellRecord{Kind: "cell", Key: "p0/r1/b0", Samples: map[string]float64{"A": 2}},
	)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle record's payload: CRC must catch it.
	lines := strings.SplitAfter(string(raw), "\n")
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x01
	lines[1] = string(mid)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadJournal(journal.OSFS, path); !errors.Is(err, ErrJournalCorrupt) {
		t.Errorf("err = %v, want ErrJournalCorrupt", err)
	}
}

func TestJournalMissingHeader(t *testing.T) {
	path := writeJournal(t,
		&cellRecord{Kind: "cell", Key: "p0/r0/b0", Samples: map[string]float64{"A": 1}},
	)
	if _, _, err := loadJournal(journal.OSFS, path); !errors.Is(err, ErrJournalCorrupt) {
		t.Errorf("err = %v, want ErrJournalCorrupt", err)
	}
}

func TestJournalVersionMismatch(t *testing.T) {
	h := testHeader()
	h.Version = journalVersion + 1
	path := writeJournal(t, h)
	if _, _, err := loadJournal(journal.OSFS, path); !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("err = %v, want ErrJournalMismatch", err)
	}
}

func TestHeaderMatches(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*journalHeader)
	}{
		{"param name", func(h *journalHeader) { h.ParamName = "sizes" }},
		{"point count", func(h *journalHeader) { h.Params = h.Params[:1] }},
		{"point value", func(h *journalHeader) { h.Params[1] = 99 }},
		{"reps", func(h *journalHeader) { h.Reps = 5 }},
		{"mode", func(h *journalHeader) { h.Mode = "unlimited" }},
		{"seed", func(h *journalHeader) { h.Seed = 8 }},
		{"event count", func(h *journalHeader) { h.Events = h.Events[:1] }},
		{"event name", func(h *journalHeader) { h.Events[0] = "C" }},
	}
	for _, m := range mutations {
		h := testHeader()
		m.mutate(h)
		err := h.matches(testHeader())
		if !errors.Is(err, ErrJournalMismatch) {
			t.Errorf("%s: err = %v, want ErrJournalMismatch", m.name, err)
		}
	}
}

// The empty/header-only contract, unified with the fleet journal: a
// zero-byte file is "no journal" — a fresh run may claim it and a
// resume starts from scratch — while a header-only journal is existing
// state: fresh runs refuse it, resumes replay zero cells.
func TestJournalEmptyAndHeaderOnlyRunSemantics(t *testing.T) {
	spec := testSpec(testPoint(1, 1))

	t.Run("empty/fresh", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "j")
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := (&Runner{Spec: spec, Opts: Options{JournalPath: path}}).Run()
		if err != nil {
			t.Fatalf("fresh run refused a zero-byte journal: %v", err)
		}
		if !rep.Complete() {
			t.Fatalf("incomplete: %s", rep.Summary())
		}
	})
	t.Run("empty/resume", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "j")
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := (&Runner{Spec: spec, Opts: Options{JournalPath: path, Resume: true}}).Run()
		if err != nil {
			t.Fatalf("resume over a zero-byte journal: %v", err)
		}
		if rep.Replayed != 0 || !rep.Complete() {
			t.Fatalf("replayed %d, complete %v; want a from-scratch run", rep.Replayed, rep.Complete())
		}
	})
	headerOnly := func(t *testing.T) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "j")
		w, err := journal.OpenAppend(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append((&Runner{Spec: spec}).header()); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	t.Run("header-only/fresh", func(t *testing.T) {
		path := headerOnly(t)
		if _, err := (&Runner{Spec: spec, Opts: Options{JournalPath: path}}).Run(); !errors.Is(err, ErrJournalExists) {
			t.Fatalf("err = %v, want ErrJournalExists", err)
		}
	})
	t.Run("header-only/resume", func(t *testing.T) {
		path := headerOnly(t)
		rep, err := (&Runner{Spec: spec, Opts: Options{JournalPath: path, Resume: true}}).Run()
		if err != nil {
			t.Fatalf("resume over a header-only journal: %v", err)
		}
		if rep.Replayed != 0 || !rep.Complete() {
			t.Fatalf("replayed %d, complete %v; want zero replays", rep.Replayed, rep.Complete())
		}
	})
}
