package campaign

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"numaperf/internal/clockx"
	"numaperf/internal/counters"
	"numaperf/internal/evsel"
	"numaperf/internal/exec"
	"numaperf/internal/perf"
	"numaperf/internal/topology"
)

// scanBody streams over 64 KiB, touching every cache line.
func scanBody(t *exec.Thread) {
	buf := t.Alloc(64 << 10)
	for off := uint64(0); off < buf.Size; off += 64 {
		t.Load(buf.Addr(off))
	}
}

// testPoint builds a sweep point running scanBody on a two-socket
// machine with the given thread count.
func testPoint(threads int, param float64) Point {
	return Point{
		Param: param,
		Mk: func(seed int64) (*exec.Engine, func(*exec.Thread), error) {
			e, err := exec.NewEngine(exec.Config{
				Machine: topology.TwoSocket(),
				Threads: threads,
				Seed:    seed,
			})
			if err != nil {
				return nil, nil, err
			}
			return e, scanBody, nil
		},
	}
}

var testEvents = []counters.EventID{
	counters.AllLoads, counters.L1Hit, counters.L1Miss, counters.L2Hit,
	counters.L2Miss, counters.InstRetired,
}

func testSpec(points ...Point) Spec {
	return Spec{
		ParamName: "threads",
		Points:    points,
		Events:    testEvents,
		Reps:      2,
		Mode:      perf.Batched,
		Seed:      11,
	}
}

// noSleep removes real backoff delays from tests (shared helper in
// internal/clockx).
var noSleep = clockx.NoSleep

func TestRunnerComplete(t *testing.T) {
	r := &Runner{Spec: testSpec(testPoint(1, 1), testPoint(2, 2))}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("campaign not complete: %s", rep.Summary())
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	if rep.Ran != rep.Cells || rep.Replayed != 0 || rep.Retried != 0 {
		t.Errorf("accounting: ran %d of %d cells, %d replayed, %d retried",
			rep.Ran, rep.Cells, rep.Replayed, rep.Retried)
	}
	for _, p := range rep.Points {
		if p.M.Partial {
			t.Errorf("point %g marked partial", p.Param)
		}
		for _, id := range testEvents {
			if got := len(p.M.Samples[id]); got != 2 {
				t.Errorf("point %g event %s: %d samples, want 2",
					p.Param, counters.Def(id).Name, got)
			}
			if cov := p.M.Coverage(id); cov != 1 {
				t.Errorf("point %g event %s coverage = %g", p.Param, counters.Def(id).Name, cov)
			}
		}
	}
	if !strings.Contains(rep.Summary(), "complete, no gaps") {
		t.Errorf("summary missing completion line:\n%s", rep.Summary())
	}
}

// TestRunnerDeterministic: two identical campaigns serialize to
// identical bytes — the foundation of the resume invariant.
func TestRunnerDeterministic(t *testing.T) {
	spec := testSpec(testPoint(1, 1), testPoint(2, 2), testPoint(4, 4))
	a, err := (&Runner{Spec: spec}).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Runner{Spec: spec}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if !bytes.Equal(saveBytes(t, a.Points[i].M), saveBytes(t, b.Points[i].M)) {
			t.Errorf("point %d: repeated campaign differs", i)
		}
	}
}

func TestRunnerValidate(t *testing.T) {
	base := testSpec(testPoint(1, 1))
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no points", func(s *Spec) { s.Points = nil }},
		{"no events", func(s *Spec) { s.Events = nil }},
		{"zero reps", func(s *Spec) { s.Reps = 0 }},
		{"nil mk", func(s *Spec) { s.Points = []Point{{Param: 1}} }},
	}
	for _, tc := range cases {
		spec := base
		tc.mutate(&spec)
		if _, err := (&Runner{Spec: spec}).Run(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestRetryHealsTransientFault(t *testing.T) {
	fails := 0
	r := &Runner{
		Spec: testSpec(testPoint(1, 1)),
		Opts: Options{
			Sleep: noSleep,
			Wrap: func(next RunFunc) RunFunc {
				return func(c Cell) (map[counters.EventID]float64, error) {
					if c.Key() == "p0/r1/b0" && fails == 0 {
						fails++
						return nil, errors.New("transient")
					}
					return next(c)
				}
			},
		},
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() || rep.Retried != 1 {
		t.Errorf("retried = %d, complete = %v; want 1, true", rep.Retried, rep.Complete())
	}
}

func TestKeepGoingRecordsGap(t *testing.T) {
	r := &Runner{
		Spec: testSpec(testPoint(1, 1)),
		Opts: Options{
			KeepGoing:  true,
			MaxRetries: -1,
			Sleep:      noSleep,
			Wrap: func(next RunFunc) RunFunc {
				return func(c Cell) (map[counters.EventID]float64, error) {
					if c.Rep == 1 {
						return nil, errors.New("boom")
					}
					return next(c)
				}
			},
		},
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete() {
		t.Fatal("expected gaps")
	}
	if len(rep.Gaps) == 0 {
		t.Fatal("no gaps recorded")
	}
	m := rep.Points[0].M
	if !m.Partial {
		t.Error("measurement not marked partial")
	}
	// Rep 1 failed entirely: every event keeps only rep 0's sample.
	for _, id := range testEvents {
		if cov := m.Coverage(id); cov != 0.5 {
			t.Errorf("%s coverage = %g, want 0.5", counters.Def(id).Name, cov)
		}
	}
	if !strings.Contains(rep.Summary(), "gap: cell") {
		t.Errorf("summary missing gap line:\n%s", rep.Summary())
	}
}

func TestAbortWithoutKeepGoing(t *testing.T) {
	r := &Runner{
		Spec: testSpec(testPoint(1, 1)),
		Opts: Options{
			MaxRetries: -1,
			Sleep:      noSleep,
			Wrap: func(next RunFunc) RunFunc {
				return func(c Cell) (map[counters.EventID]float64, error) {
					return nil, errors.New("hard failure")
				}
			},
		},
	}
	_, err := r.Run()
	var ce *CampaignError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CampaignError", err)
	}
	var cell *CellError
	if !errors.As(err, &cell) || cell.Attempts != 1 {
		t.Errorf("cell error attempts = %v", err)
	}
}

func TestOpBudgetIsNotRetried(t *testing.T) {
	r := &Runner{
		Spec: testSpec(testPoint(1, 1)),
		Opts: Options{
			OpBudget:  16, // scanBody issues ~1024 loads
			KeepGoing: true,
			Sleep:     noSleep,
		},
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// A budget abort is deterministic: no retries, every cell a gap.
	if rep.Retried != 0 {
		t.Errorf("retried %d times on a deterministic failure", rep.Retried)
	}
	if len(rep.Gaps) != rep.Cells {
		t.Errorf("gaps = %d, want %d", len(rep.Gaps), rep.Cells)
	}
	for _, g := range rep.Gaps {
		if !strings.Contains(g.Reason, "op budget") {
			t.Errorf("gap reason %q does not name the op budget", g.Reason)
		}
	}
}

func TestQuarantineAfterRepeatedBadValues(t *testing.T) {
	poison := counters.Def(counters.L1Hit).Name
	spec := testSpec(testPoint(1, 1))
	spec.Reps = 3
	r := &Runner{
		Spec: spec,
		Opts: Options{
			Sleep: noSleep,
			Wrap: func(next RunFunc) RunFunc {
				return func(c Cell) (map[counters.EventID]float64, error) {
					out, err := next(c)
					if err == nil {
						if _, ok := out[counters.L1Hit]; ok {
							out[counters.L1Hit] = -1
						}
					}
					return out, err
				}
			},
		},
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Event != counters.L1Hit {
		t.Fatalf("quarantined = %+v, want %s", rep.Quarantined, poison)
	}
	q := rep.Quarantined[0]
	if q.Strikes < DefaultQuarantineAfter || !strings.Contains(q.Reason, "impossible value") {
		t.Errorf("quarantine verdict = %+v", q)
	}
	m := rep.Points[0].M
	if _, ok := m.Samples[counters.L1Hit]; ok {
		t.Error("quarantined event still present in measurement")
	}
	if !m.Partial {
		t.Error("measurement with a quarantined event must be partial")
	}
	// The other events are untouched.
	if got := len(m.Samples[counters.AllLoads]); got != 3 {
		t.Errorf("healthy event lost samples: %d, want 3", got)
	}
	if !strings.Contains(rep.Summary(), "quarantined: "+poison) {
		t.Errorf("summary missing quarantine line:\n%s", rep.Summary())
	}
}

func TestJournalRefusedWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	r := &Runner{Spec: testSpec(testPoint(1, 1)), Opts: Options{JournalPath: path}}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Spec: testSpec(testPoint(1, 1)), Opts: Options{JournalPath: path}}).Run(); !errors.Is(err, ErrJournalExists) {
		t.Errorf("err = %v, want ErrJournalExists", err)
	}
}

func TestResumeMismatchedSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	if _, err := (&Runner{Spec: testSpec(testPoint(1, 1)), Opts: Options{JournalPath: path}}).Run(); err != nil {
		t.Fatal(err)
	}
	other := testSpec(testPoint(1, 1))
	other.Seed = 999
	_, err := (&Runner{Spec: other, Opts: Options{JournalPath: path, Resume: true}}).Run()
	if !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("err = %v, want ErrJournalMismatch", err)
	}
}

// TestResumeByteIdentical is the acceptance test: a campaign aborted
// mid-flight and resumed from its journal produces byte-identical
// measurements to an uninterrupted campaign with the same seed.
func TestResumeByteIdentical(t *testing.T) {
	spec := testSpec(testPoint(1, 1), testPoint(2, 2), testPoint(4, 4))

	// The uninterrupted reference run.
	ref, err := (&Runner{Spec: spec}).Run()
	if err != nil {
		t.Fatal(err)
	}

	// The same campaign killed at a mid-flight cell...
	path := filepath.Join(t.TempDir(), "campaign.journal")
	kill := func(next RunFunc) RunFunc {
		return func(c Cell) (map[counters.EventID]float64, error) {
			if c.Point == 1 && c.Rep == 1 {
				return nil, errors.New("injected kill")
			}
			return next(c)
		}
	}
	_, err = (&Runner{Spec: spec, Opts: Options{
		JournalPath: path, MaxRetries: -1, Sleep: noSleep, Wrap: kill,
	}}).Run()
	var ce *CampaignError
	if !errors.As(err, &ce) {
		t.Fatalf("expected abort, got %v", err)
	}

	// ...resumes from the journal and finishes clean.
	rep, err := (&Runner{Spec: spec, Opts: Options{
		JournalPath: path, Resume: true, Sleep: noSleep,
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("resumed campaign incomplete: %s", rep.Summary())
	}
	if rep.Replayed == 0 || rep.Ran == 0 {
		t.Errorf("resume accounting: %d replayed, %d ran; want both > 0", rep.Replayed, rep.Ran)
	}
	for i := range ref.Points {
		got, want := saveBytes(t, rep.Points[i].M), saveBytes(t, ref.Points[i].M)
		if !bytes.Equal(got, want) {
			t.Errorf("point %d differs after resume:\ngot:\n%s\nwant:\n%s", i, got, want)
		}
	}
}

// TestResumeTolerantOfTornTail: a journal whose final record was cut
// off mid-write (the kill -9 signature) resumes cleanly, re-running
// only the torn cell.
func TestResumeTolerantOfTornTail(t *testing.T) {
	spec := testSpec(testPoint(1, 1))
	path := filepath.Join(t.TempDir(), "campaign.journal")
	ref, err := (&Runner{Spec: spec, Opts: Options{JournalPath: path}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := (&Runner{Spec: spec, Opts: Options{JournalPath: path, Resume: true}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Error("torn tail not reported")
	}
	if rep.Ran != 1 {
		t.Errorf("ran %d cells, want exactly the torn one", rep.Ran)
	}
	if !bytes.Equal(saveBytes(t, rep.Points[0].M), saveBytes(t, ref.Points[0].M)) {
		t.Error("measurement differs after torn-tail resume")
	}
	if !strings.Contains(rep.Summary(), "torn final journal record") {
		t.Errorf("summary missing truncation notice:\n%s", rep.Summary())
	}
}

// TestResumeReplaysGapsAndStrikes: gap records and bad-value strikes
// replay from the journal, so quarantine decisions survive a resume.
func TestResumeReplaysGaps(t *testing.T) {
	spec := testSpec(testPoint(1, 1))
	spec.Reps = 3
	path := filepath.Join(t.TempDir(), "campaign.journal")
	wrap := func(next RunFunc) RunFunc {
		return func(c Cell) (map[counters.EventID]float64, error) {
			return nil, errors.New("boom")
		}
	}
	first, err := (&Runner{Spec: spec, Opts: Options{
		JournalPath: path, KeepGoing: true, MaxRetries: -1, Sleep: noSleep, Wrap: wrap,
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := (&Runner{Spec: spec, Opts: Options{
		JournalPath: path, Resume: true, Sleep: noSleep,
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Ran != 0 || resumed.Replayed != resumed.Cells {
		t.Errorf("resume of a finished campaign ran %d cells", resumed.Ran)
	}
	if len(resumed.Gaps) != len(first.Gaps) {
		t.Errorf("gaps: %d replayed, %d original", len(resumed.Gaps), len(first.Gaps))
	}
	if len(resumed.Quarantined) != len(first.Quarantined) {
		t.Errorf("quarantine: %d replayed, %d original", len(resumed.Quarantined), len(first.Quarantined))
	}
}

func TestSupervisorDo(t *testing.T) {
	sup := NewSupervisor(0, 2, 3)
	sup.Sleep = noSleep
	calls := 0
	v, attempts, err := Do(sup, func() (int, error) {
		calls++
		if calls < 3 {
			return 0, errors.New("transient")
		}
		return 42, nil
	})
	if err != nil || v != 42 || attempts != 3 {
		t.Errorf("Do = (%d, %d, %v)", v, attempts, err)
	}

	// Panics are recovered into typed errors.
	_, _, err = Do(sup, func() (int, error) { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("panic not recovered: %v", err)
	}

	// Timeouts abandon the attempt.
	hung := NewSupervisor(10*time.Millisecond, 0, 0)
	release := make(chan struct{})
	defer close(release)
	_, _, err = Do(hung, func() (int, error) { <-release; return 0, nil })
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Errorf("hang not timed out: %v", err)
	}

	// The convenience form counts attempts the same way.
	n := 0
	attempts, err = sup.Do(func() error {
		n++
		if n == 1 {
			return errors.New("once")
		}
		return nil
	})
	if err != nil || attempts != 2 {
		t.Errorf("Supervisor.Do = (%d, %v)", attempts, err)
	}
}

func saveBytes(t *testing.T, m *perf.Measurement) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := evsel.SaveMeasurement(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
