// Fuzz targets for the campaign journal's wire format. On arbitrary
// bytes the parser must hold two properties: never panic, and fail only
// with the journal's typed errors — a damaged journal is diagnosed, not
// crashed on and never resumed from silently.
package campaign

import (
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"
)

// frameLine builds one valid journal line for a payload.
func frameLine(payload string) string {
	return fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE([]byte(payload)), payload)
}

func FuzzParseJournal(f *testing.F) {
	header := `{"kind":"header","v":1,"param_name":"threads","params":[1,2],"events":["mem_load_retired_all"],"reps":2,"mode":"Batched","seed":7}`
	cell := `{"kind":"cell","key":"p0/r0/b0","samples":{"mem_load_retired_all":1024}}`
	gapl := `{"kind":"gap","key":"p0/r1/b0","error":"run timed out","events":["mem_load_retired_all"]}`
	f.Add([]byte{})
	f.Add([]byte(frameLine(header)))
	f.Add([]byte(frameLine(header) + frameLine(cell) + frameLine(gapl)))
	f.Add([]byte(frameLine(header) + frameLine(cell)[:25])) // torn tail
	f.Add([]byte(frameLine(cell)))                          // missing header
	f.Add([]byte(frameLine(header) + frameLine(`{"kind":"mystery"}`)))
	f.Add([]byte("deadbeef not json\n"))
	f.Add([]byte(frameLine(header) + strings.Repeat(frameLine(cell), 16)))
	// Segmented-journal vocabulary: a checkpoint record never reaches
	// this parser in production (LoadSegmented expands it first), so a
	// raw single file carrying one must diagnose as corrupt, typed.
	ckpt := `{"kind":"checkpoint","records":[` + cell + `,` + gapl + `]}`
	f.Add([]byte(frameLine(header) + frameLine(ckpt)))
	f.Add([]byte(frameLine(header) + frameLine(ckpt) + frameLine(cell)))
	f.Add([]byte(frameLine(header) + frameLine(ckpt)[:30])) // torn checkpoint
	f.Fuzz(func(t *testing.T, raw []byte) {
		st, err := parseJournal(raw)
		if err != nil {
			if !errors.Is(err, ErrJournalCorrupt) && !errors.Is(err, ErrJournalMismatch) {
				t.Fatalf("untyped journal error: %v", err)
			}
			return
		}
		if st == nil {
			if len(raw) != 0 {
				t.Fatalf("nil state accepted for %d non-empty bytes", len(raw))
			}
			return
		}
		if st.header == nil {
			t.Fatal("journal accepted without a header")
		}
		if st.header.Version != journalVersion {
			t.Fatalf("accepted journal version %d", st.header.Version)
		}
		if st.completed() != len(st.cells)+len(st.gaps) {
			t.Fatal("completed() disagrees with loaded records")
		}
	})
}

func FuzzParseLine(f *testing.F) {
	f.Add(strings.TrimSuffix(frameLine(`{"kind":"cell","key":"p0/r0/b0"}`), "\n"))
	f.Add("00000000 {}")
	f.Add("short")
	f.Add("zzzzzzzz {}")
	f.Add("deadbeef{}")
	f.Fuzz(func(t *testing.T, line string) {
		kind, payload, err := parseLine(line)
		if err != nil {
			return
		}
		// A line that verified must round-trip: re-framing the payload
		// yields a line parseLine accepts with the same kind.
		again := strings.TrimSuffix(frameLine(string(payload)), "\n")
		k2, _, err2 := parseLine(again)
		if err2 != nil || k2 != kind {
			t.Fatalf("verified line does not round-trip: err %v, kind %q vs %q", err2, k2, kind)
		}
	})
}
