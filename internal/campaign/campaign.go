// Package campaign is the supervised measurement layer for EvSel.
// Measuring "the whole plenitude of available hardware counters" means
// re-running a program once per PMU register batch, times repetitions,
// times sweep parameters — dozens to hundreds of runs, any of which can
// hang, panic, exit nonzero or return garbage on a real machine. The
// campaign runner decomposes such a request into individually retryable
// run cells, executes each under a wall-clock timeout and op budget
// with panic recovery, retries transient failures with deterministic
// capped backoff, journals every completed cell to a CRC-checked
// append-only file (so a killed campaign resumes exactly where it
// stopped), quarantines counters that repeatedly fail or return
// impossible values, and reports typed gaps for everything it could not
// measure — never a hang, never silent sample loss.
//
// Each cell builds a fresh engine seeded by the cell's global ordinal,
// so a cell's measurement is a pure function of the spec: retries,
// crashes and resumes cannot change the final numbers, which is what
// makes a resumed campaign byte-identical to an uninterrupted one.
//
// That same independence makes cells safe to measure concurrently: with
// Options.Concurrency > 1 a bounded worker pool executes cells while a
// single committer consumes their outcomes re-sequenced into canonical
// cell order, so the journal, the resume path, quarantine verdicts and
// every rendered table stay byte-identical to a serial run at any
// worker count — parallelism changes wall-clock time and nothing else.
package campaign

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"numaperf/internal/counters"
	"numaperf/internal/exec"
	"numaperf/internal/journal"
	"numaperf/internal/perf"
	"numaperf/internal/probenet"
)

// DefaultMaxRetries is the retry allowance per cell when Options leaves
// MaxRetries zero.
const DefaultMaxRetries = 2

// DefaultQuarantineAfter is the strike count at which an event is
// quarantined when Options leaves QuarantineAfter zero.
const DefaultQuarantineAfter = 3

// DefaultRunTimeout bounds one run attempt when Options leaves
// RunTimeout zero.
const DefaultRunTimeout = 30 * time.Second

// Point is one sweep setting: the parameter value and a constructor
// producing a fresh engine and body for it. Mk is called once per run
// cell with a cell-specific seed, which keeps every cell independent of
// execution order — the resume invariant.
type Point struct {
	Param float64
	Mk    func(seed int64) (*exec.Engine, func(*exec.Thread), error)
}

// Spec describes a measurement campaign: events × reps × batches per
// sweep point.
type Spec struct {
	// ParamName labels the swept parameter ("threads"); single-point
	// campaigns may leave it empty.
	ParamName string
	Points    []Point
	Events    []counters.EventID
	Reps      int
	Mode      perf.Mode
	// Seed is the campaign base seed; cell i measures with Seed+i+1.
	Seed int64
}

// Options tunes the runner's supervision and persistence.
type Options struct {
	// RunTimeout bounds one run attempt (0 = DefaultRunTimeout,
	// negative = no wall clock).
	RunTimeout time.Duration
	// OpBudget caps simulated operations per run; 0 = unlimited. A
	// budget abort is deterministic and therefore never retried.
	OpBudget uint64
	// MaxRetries is the per-cell retry allowance (0 =
	// DefaultMaxRetries, negative = no retries).
	MaxRetries int
	// KeepGoing records a typed gap for a cell whose retries are
	// exhausted and continues; without it the campaign aborts with a
	// *CampaignError (the journal keeping everything completed so far).
	KeepGoing bool
	// QuarantineAfter is the strike count that quarantines an event
	// (0 = DefaultQuarantineAfter, negative = never).
	QuarantineAfter int
	// Concurrency is the number of cells measured at once (≤ 1 =
	// serial). Every cell runs on its own engine and outcomes are
	// committed in canonical cell order by a single goroutine, so the
	// journal, resume behaviour, quarantine verdicts and every rendered
	// table are byte-identical at any setting — only wall-clock time
	// changes. Each cell's retry backoff is seeded BackoffSeed + cell
	// ordinal, keeping retry delays reproducible regardless of worker
	// scheduling.
	Concurrency int
	// JournalPath enables the crash journal; empty runs in memory only.
	JournalPath string
	// JournalSegmentBytes rotates the journal into checkpointed
	// segments (JournalPath.000001, …) once the live tail passes this
	// many bytes, keeping resume cost O(tail) instead of O(history).
	// Zero keeps the single-file layout. A legacy single-file journal
	// resumed with rotation enabled is migrated crash-safely.
	JournalSegmentBytes int
	// StrictJournal fails the campaign with ErrJournalDegraded on any
	// journal disk fault (ENOSPC, fsync failure, …). Without it the
	// campaign finishes in memory and the report is marked
	// JournalDegraded — results intact, resume guarantee honestly lost.
	StrictJournal bool
	// JournalFS overrides the filesystem under the journal; nil is the
	// real one. internal/faultdisk scripts disk faults through this.
	JournalFS journal.FS
	// Resume loads an existing journal and skips its completed cells.
	// Without Resume, a non-empty journal is an error, never silently
	// overwritten.
	Resume bool
	// BackoffBase/BackoffMax/BackoffSeed parameterise the deterministic
	// retry backoff (probenet defaults when zero).
	BackoffBase, BackoffMax time.Duration
	BackoffSeed             int64
	// Sleep replaces time.Sleep in tests.
	Sleep func(time.Duration)
	// Wrap decorates the cell run function; the faultrun package uses
	// this to inject scripted run-level faults.
	Wrap Middleware
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Cell identifies one run: a (point, repetition, batch) coordinate plus
// its global ordinal, which seeds the cell's engine.
type Cell struct {
	Point int
	Rep   int
	Batch int
	Index int
	Param float64
}

// Key is the cell's journal identity.
func (c Cell) Key() string { return fmt.Sprintf("p%d/r%d/b%d", c.Point, c.Rep, c.Batch) }

// RunFunc executes one measurement run for a cell and returns the
// per-event values it observed.
type RunFunc func(Cell) (map[counters.EventID]float64, error)

// Middleware wraps a RunFunc — the seam where faultrun injects faults.
// Under Concurrency > 1 the wrapped RunFunc is called from multiple
// pool workers at once and must be safe for concurrent use.
type Middleware func(RunFunc) RunFunc

// cellOutcome carries one executed cell from a pool worker to the
// committer.
type cellOutcome struct {
	cell     Cell
	samples  map[counters.EventID]float64
	attempts int
	err      error
}

// Gap is a typed hole in the campaign's data: a cell that was given up
// on, and the events that consequently lack one sample each.
type Gap struct {
	Cell   Cell
	Events []counters.EventID
	Reason string
}

// Quarantine reports a counter removed from the results because its
// runs repeatedly failed or returned impossible values.
type Quarantine struct {
	Event   counters.EventID
	Name    string
	Strikes int
	Reason  string
}

// PointResult is the assembled measurement of one sweep point.
type PointResult struct {
	Param float64
	M     *perf.Measurement
}

// Report is the outcome of a campaign: per-point measurements plus a
// faithful account of everything that went wrong.
type Report struct {
	ParamName   string
	Points      []PointResult
	Gaps        []Gap
	Quarantined []Quarantine
	// Cells counts the campaign's run cells; Ran of them executed this
	// session, Replayed came from the journal, Retried counts extra
	// attempts beyond each cell's first.
	Cells, Ran, Replayed, Retried int
	// Truncated records that a torn final journal record was dropped
	// during resume (the expected signature of a crash mid-write).
	Truncated bool
	// JournalDegraded records that a disk fault cost this run its
	// journal mid-campaign: the results are complete (finished in
	// memory) but crash-resume protection was lost. JournalFault names
	// the fault.
	JournalDegraded bool
	JournalFault    string
}

// Complete reports whether every expected sample was measured.
func (r *Report) Complete() bool { return len(r.Gaps) == 0 && len(r.Quarantined) == 0 }

// Summary renders the supervision outcome for humans: cell accounting,
// gaps and quarantine verdicts.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "campaign: %d cells (%d run, %d replayed from journal, %d retries)\n",
		r.Cells, r.Ran, r.Replayed, r.Retried)
	if r.Truncated {
		sb.WriteString("campaign: dropped a torn final journal record (crash mid-write)\n")
	}
	if r.JournalDegraded {
		fmt.Fprintf(&sb, "campaign: JOURNAL DEGRADED (%s) — crash-resume protection lost\n", r.JournalFault)
	}
	for _, g := range r.Gaps {
		fmt.Fprintf(&sb, "gap: cell %s (%s=%g): %s (%d events unsampled)\n",
			g.Cell.Key(), r.ParamName, g.Cell.Param, g.Reason, len(g.Events))
	}
	for _, q := range r.Quarantined {
		fmt.Fprintf(&sb, "quarantined: %s after %d strikes: %s\n", q.Name, q.Strikes, q.Reason)
	}
	if r.Complete() {
		sb.WriteString("campaign: complete, no gaps, no quarantined counters\n")
	}
	return sb.String()
}

// Runner executes a Spec under Options.
type Runner struct {
	Spec Spec
	Opts Options
}

// pointPlan is the cell decomposition of one sweep point.
type pointPlan struct {
	batches int
	visible func(b int) []counters.EventID
}

func (r *Runner) validate() error {
	if len(r.Spec.Points) == 0 {
		return errors.New("campaign: no sweep points")
	}
	if len(r.Spec.Events) == 0 {
		return errors.New("campaign: no events requested")
	}
	if r.Spec.Reps <= 0 {
		return errors.New("campaign: need at least one repetition")
	}
	for i, p := range r.Spec.Points {
		if p.Mk == nil {
			return fmt.Errorf("campaign: point %d has no engine constructor", i)
		}
	}
	return nil
}

// plan builds the per-point cell decomposition. Batched mode needs one
// probe engine per point to learn the register budget; other modes run
// one whole-event-set cell per repetition.
func (r *Runner) plan() ([]pointPlan, error) {
	plans := make([]pointPlan, len(r.Spec.Points))
	for i, p := range r.Spec.Points {
		if r.Spec.Mode != perf.Batched {
			all := append([]counters.EventID(nil), r.Spec.Events...)
			plans[i] = pointPlan{batches: 1, visible: func(int) []counters.EventID { return all }}
			continue
		}
		e, _, err := p.Mk(r.Spec.Seed)
		if err != nil {
			return nil, fmt.Errorf("campaign: planning point %d: %w", i, err)
		}
		bp := perf.PlanBatches(e, r.Spec.Events)
		plans[i] = pointPlan{batches: bp.Batches(), visible: bp.Visible}
	}
	return plans, nil
}

// cells enumerates the campaign's run cells in their canonical order:
// points outermost, then repetitions, then register batches.
func (r *Runner) cells(plans []pointPlan) []Cell {
	var out []Cell
	idx := 0
	for pi, p := range r.Spec.Points {
		for rep := 0; rep < r.Spec.Reps; rep++ {
			for b := 0; b < plans[pi].batches; b++ {
				out = append(out, Cell{Point: pi, Rep: rep, Batch: b, Index: idx, Param: p.Param})
				idx++
			}
		}
	}
	return out
}

// defaultRun builds the real measurement RunFunc: fresh engine per
// cell, seeded by the cell ordinal, executing one register batch
// (Batched) or one full repetition (Unlimited/Multiplexed).
func (r *Runner) defaultRun(plans []pointPlan) RunFunc {
	return func(c Cell) (map[counters.EventID]float64, error) {
		p := r.Spec.Points[c.Point]
		e, body, err := p.Mk(r.Spec.Seed + int64(c.Index) + 1)
		if err != nil {
			return nil, err
		}
		if r.Opts.OpBudget > 0 {
			e.SetOpBudget(r.Opts.OpBudget)
		}
		if r.Spec.Mode == perf.Batched {
			return perf.RunVisible(e, body, plans[c.Point].visible(c.Batch))
		}
		m, err := perf.Measure(e, body, r.Spec.Events, 1, r.Spec.Mode)
		if err != nil {
			return nil, err
		}
		out := make(map[counters.EventID]float64, len(m.Samples))
		for id, s := range m.Samples {
			if len(s) > 0 {
				out[id] = s[0]
			}
		}
		return out, nil
	}
}

// header describes the spec for journal verification.
func (r *Runner) header() *journalHeader {
	h := &journalHeader{
		Kind:      "header",
		Version:   journalVersion,
		ParamName: r.Spec.ParamName,
		Reps:      r.Spec.Reps,
		Mode:      r.Spec.Mode.String(),
		Seed:      r.Spec.Seed,
	}
	for _, p := range r.Spec.Points {
		h.Params = append(h.Params, p.Param)
	}
	for _, id := range r.Spec.Events {
		h.Events = append(h.Events, counters.Def(id).Name)
	}
	return h
}

// strikeLog accumulates per-event evidence for quarantine decisions.
type strikeLog struct {
	count   map[counters.EventID]int
	reasons map[counters.EventID][]string
}

func newStrikeLog() *strikeLog {
	return &strikeLog{
		count:   make(map[counters.EventID]int),
		reasons: make(map[counters.EventID][]string),
	}
}

func (s *strikeLog) strike(id counters.EventID, reason string) {
	s.count[id]++
	rs := s.reasons[id]
	if len(rs) == 0 || rs[len(rs)-1] != reason {
		s.reasons[id] = append(rs, reason)
	}
}

// Run executes the campaign and returns its report. On an aborted
// campaign (KeepGoing disabled) the error is a *CampaignError and the
// journal retains every completed cell for a later resume.
func (r *Runner) Run() (*Report, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	logf := r.Opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	plans, err := r.plan()
	if err != nil {
		return nil, err
	}
	cells := r.cells(plans)

	// Journal: load prior state when resuming (truncating a torn tail
	// before appending), refuse to clobber otherwise, open for append.
	// The writer owns the header: it writes one at the head of a fresh
	// journal and of every rotated segment.
	var state *journalState
	var jnl journal.Log = (*journal.Writer)(nil)
	if r.Opts.JournalPath != "" {
		fsys := r.Opts.JournalFS
		if fsys == nil {
			fsys = journal.OSFS
		}
		var prior *journal.SegmentedState
		if r.Opts.Resume {
			state, prior, err = loadJournal(fsys, r.Opts.JournalPath)
			if err != nil {
				return nil, err
			}
			if state != nil {
				if err := state.header.matches(r.header()); err != nil {
					return nil, err
				}
				logf("campaign: resuming %s: %d of %d cells already journaled",
					r.Opts.JournalPath, state.completed(), len(cells))
			}
		} else if journal.HasState(fsys, r.Opts.JournalPath) {
			return nil, fmt.Errorf("%w: %s", ErrJournalExists, r.Opts.JournalPath)
		}
		sw, jerr := journal.OpenSegmented(fsys, r.Opts.JournalPath, prior, journal.SegmentedOptions{
			SegmentBytes: r.Opts.JournalSegmentBytes,
			Version:      journalVersion,
			Header:       r.header(),
		})
		if jerr != nil {
			return nil, fmt.Errorf("campaign: opening journal: %w", jerr)
		}
		jnl = sw
		defer jnl.Close()
	}

	run := r.defaultRun(plans)
	if r.Opts.Wrap != nil {
		run = r.Opts.Wrap(run)
	}
	timeout := r.Opts.RunTimeout
	switch {
	case timeout == 0:
		timeout = DefaultRunTimeout
	case timeout < 0:
		timeout = 0
	}
	maxRetries := r.Opts.MaxRetries
	switch {
	case maxRetries == 0:
		maxRetries = DefaultMaxRetries
	case maxRetries < 0:
		maxRetries = 0
	}
	// Every cell gets its own supervisor whose backoff stream is seeded
	// by the cell ordinal: retry delays depend only on the cell, never
	// on which worker ran it or in what order.
	mkSup := func(c Cell) *Supervisor {
		return &Supervisor{
			Timeout:    timeout,
			MaxRetries: maxRetries,
			Backoff:    probenet.NewBackoff(r.Opts.BackoffBase, r.Opts.BackoffMax, r.Opts.BackoffSeed+int64(c.Index)),
			Sleep:      r.Opts.Sleep,
		}
	}

	rep := &Report{ParamName: r.Spec.ParamName, Cells: len(cells)}
	if state != nil {
		rep.Truncated = state.truncated
	}

	// journalFault is the disk-fault policy at every journal append: a
	// scripted crash propagates verbatim (the chaos harness resumes
	// from whatever hit the disk); under StrictJournal any other fault
	// aborts typed; otherwise the journal is dropped, the campaign
	// finishes in memory, and the report says so — the resume guarantee
	// is never lost silently.
	journalFault := func(err error) error {
		switch {
		case err == nil:
			return nil
		case errors.Is(err, journal.ErrCrashed):
			return err
		case r.Opts.StrictJournal:
			return fmt.Errorf("%w: %v", ErrJournalDegraded, err)
		}
		logf("campaign: journal degraded, finishing in memory: %v", err)
		rep.JournalDegraded = true
		rep.JournalFault = err.Error()
		jnl.Close()
		jnl = (*journal.Writer)(nil)
		return nil
	}
	strikes := newStrikeLog()
	acc := make([]map[counters.EventID][]float64, len(r.Spec.Points))
	runsPerPoint := make([]int, len(r.Spec.Points))
	for i := range acc {
		acc[i] = make(map[counters.EventID][]float64)
	}

	record := func(c Cell, samples map[counters.EventID]float64, bad map[string]string) {
		runsPerPoint[c.Point]++
		for _, id := range plans[c.Point].visible(c.Batch) {
			if v, ok := samples[id]; ok {
				acc[c.Point][id] = append(acc[c.Point][id], v)
			}
		}
		for name, reason := range bad {
			if id, ok := counters.Lookup(name); ok {
				strikes.strike(id, reason)
			}
		}
	}
	gap := func(c Cell, reason string) {
		events := plans[c.Point].visible(c.Batch)
		rep.Gaps = append(rep.Gaps, Gap{Cell: c, Events: events, Reason: reason})
		for _, id := range events {
			strikes.strike(id, "run failed: "+reason)
		}
	}

	// Cells the journal does not already satisfy go to a bounded worker
	// pool. Workers only execute; the commit loop below is the sole
	// goroutine that journals, records, strikes and accounts, consuming
	// outcomes re-sequenced into canonical cell order — so every byte of
	// journal and report is independent of worker count and scheduling.
	// Concurrency ≤ 1 takes the same path with a single worker.
	var toRun []Cell
	for _, c := range cells {
		if state != nil {
			key := c.Key()
			if _, ok := state.cells[key]; ok {
				continue
			}
			if _, ok := state.gaps[key]; ok {
				continue
			}
		}
		toRun = append(toRun, c)
	}
	workers := r.Opts.Concurrency
	if workers < 1 {
		workers = 1
	}
	if workers > len(toRun) {
		workers = len(toRun)
	}

	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	defer halt()

	jobs := make(chan Cell)
	// Buffered for every dispatchable cell so workers never block on a
	// departed committer: after an abort, in-flight cells finish into
	// the buffer and their goroutines exit without leaking.
	results := make(chan cellOutcome, len(toRun))
	go func() {
		defer close(jobs)
		for _, c := range toRun {
			select {
			case jobs <- c:
			case <-stop:
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		go func() {
			for c := range jobs {
				out, attempts, err := Do(mkSup(c), func() (map[counters.EventID]float64, error) {
					return run(c)
				})
				results <- cellOutcome{cell: c, samples: out, attempts: attempts, err: err}
			}
		}()
	}

	// await returns the outcome of the cell with the given ordinal,
	// parking outcomes that arrive out of order until their turn.
	pending := make(map[int]cellOutcome, workers)
	await := func(idx int) cellOutcome {
		for {
			if o, ok := pending[idx]; ok {
				delete(pending, idx)
				return o
			}
			o := <-results
			pending[o.cell.Index] = o
		}
	}

	for _, c := range cells {
		key := c.Key()
		if state != nil {
			if cr, ok := state.cells[key]; ok {
				samples, err := decodeSamples(cr.Samples)
				if err != nil {
					return nil, fmt.Errorf("%w: cell %s: %v", ErrJournalMismatch, key, err)
				}
				record(c, samples, cr.Bad)
				rep.Replayed++
				continue
			}
			if gr, ok := state.gaps[key]; ok {
				gap(c, gr.Error)
				rep.Replayed++
				continue
			}
		}

		o := await(c.Index)
		rep.Retried += o.attempts - 1
		if o.err != nil {
			cerr := &CellError{Cell: c, Attempts: o.attempts, Err: o.err}
			if !r.Opts.KeepGoing {
				// Aborting here leaves the journal a clean prefix of the
				// serial journal: later cells may have executed on other
				// workers, but none of them has been committed.
				return rep, &CampaignError{Cell: c, Err: cerr}
			}
			logf("campaign: %v (recording gap)", cerr)
			if jerr := journalFault(jnl.Append(&gapRecord{Kind: "gap", Key: key, Error: cerr.Error(),
				Events: names(plans[c.Point].visible(c.Batch))})); jerr != nil {
				return rep, jerr
			}
			gap(c, cerr.Error())
			rep.Ran++
			continue
		}

		// Screen impossible values: the sample is dropped (a strike),
		// the rest of the cell is kept.
		out := o.samples
		samples := make(map[string]float64, len(out))
		bad := map[string]string{}
		for _, id := range plans[c.Point].visible(c.Batch) {
			v, ok := out[id]
			if !ok {
				continue
			}
			name := counters.Def(id).Name
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				bad[name] = (&ValueError{Event: name, Value: v}).Error()
				continue
			}
			samples[name] = v
		}
		if jerr := journalFault(jnl.Append(&cellRecord{Kind: "cell", Key: key, Samples: samples, Bad: bad})); jerr != nil {
			return rep, jerr
		}
		decoded, _ := decodeSamples(samples)
		record(c, decoded, bad)
		rep.Ran++
	}

	// Quarantine verdicts: counters whose strike count crossed the
	// threshold are removed from every point and reported.
	threshold := r.Opts.QuarantineAfter
	switch {
	case threshold == 0:
		threshold = DefaultQuarantineAfter
	case threshold < 0:
		threshold = math.MaxInt
	}
	var quarantined []counters.EventID
	for id, n := range strikes.count {
		if n >= threshold {
			quarantined = append(quarantined, id)
		}
	}
	sort.Slice(quarantined, func(i, j int) bool { return quarantined[i] < quarantined[j] })
	for _, id := range quarantined {
		rep.Quarantined = append(rep.Quarantined, Quarantine{
			Event:   id,
			Name:    counters.Def(id).Name,
			Strikes: strikes.count[id],
			Reason:  strings.Join(strikes.reasons[id], "; "),
		})
	}

	// Assemble per-point measurements.
	for pi, p := range r.Spec.Points {
		m := &perf.Measurement{
			Samples: make(map[counters.EventID][]float64, len(r.Spec.Events)),
			Runs:    runsPerPoint[pi],
			Batches: plans[pi].batches,
			Reps:    r.Spec.Reps,
			Mode:    r.Spec.Mode,
		}
		for _, id := range r.Spec.Events {
			if contains(quarantined, id) {
				m.Partial = true
				continue
			}
			s := acc[pi][id]
			m.Samples[id] = s
			if len(s) < r.Spec.Reps {
				m.Partial = true
			}
		}
		rep.Points = append(rep.Points, PointResult{Param: p.Param, M: m})
	}
	return rep, nil
}

// decodeSamples maps journaled event names back to IDs.
func decodeSamples(in map[string]float64) (map[counters.EventID]float64, error) {
	out := make(map[counters.EventID]float64, len(in))
	for name, v := range in {
		id, ok := counters.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown event %q", name)
		}
		out[id] = v
	}
	return out, nil
}

func names(ids []counters.EventID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = counters.Def(id).Name
	}
	return out
}

func contains(ids []counters.EventID, id counters.EventID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
