package campaign

import (
	"time"

	"numaperf/internal/probenet"
)

// Supervisor executes fallible work under a wall-clock timeout with
// panic recovery and deterministic capped-backoff retries. The campaign
// Runner supervises every cell with one; cmd/twostep wraps its training
// collection phases with one directly.
type Supervisor struct {
	// Timeout bounds one attempt; 0 disables the wall clock (the op
	// budget then being the only bound). A timed-out attempt's goroutine
	// is abandoned, never joined — a hung run cannot stall the caller —
	// and its late result is discarded.
	Timeout time.Duration
	// MaxRetries is the number of re-attempts after the first failure.
	MaxRetries int
	// Backoff yields the delay before each retry; nil uses the probenet
	// defaults (50 ms base, 2 s cap) with seed 0.
	Backoff *probenet.Backoff
	// Retryable decides whether an error is worth another attempt; nil
	// uses the campaign default (everything except op-budget exhaustion).
	Retryable func(error) bool
	// Sleep is the delay function, replaceable in tests; nil uses
	// time.Sleep.
	Sleep func(time.Duration)
}

// NewSupervisor builds a supervisor with the campaign's default retry
// policy and a deterministic backoff seeded for reproducible retry
// timing. timeout ≤ 0 disables the wall clock; maxRetries ≤ 0 disables
// retries.
func NewSupervisor(timeout time.Duration, maxRetries int, seed int64) *Supervisor {
	if maxRetries < 0 {
		maxRetries = 0
	}
	return &Supervisor{
		Timeout:    timeout,
		MaxRetries: maxRetries,
		Backoff:    probenet.NewBackoff(0, 0, seed),
	}
}

// attemptResult carries one attempt's outcome through a channel owned
// by that attempt alone, so an abandoned (timed-out) attempt can never
// race with a retry.
type attemptResult[T any] struct {
	val T
	err error
}

// Do runs fn under the supervisor's policy and returns the value and
// error of the last attempt plus the number of attempts made. A
// panicking fn yields a *PanicError; an attempt outliving Timeout
// yields a *TimeoutError.
func Do[T any](s *Supervisor, fn func() (T, error)) (val T, attempts int, err error) {
	backoff := s.Backoff
	if backoff == nil {
		backoff = probenet.NewBackoff(0, 0, 0)
	}
	sleep := s.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	canRetry := s.Retryable
	if canRetry == nil {
		canRetry = retryable
	}
	for attempt := 0; ; attempt++ {
		val, err = attemptOnce(s.Timeout, fn)
		attempts = attempt + 1
		if err == nil || attempt >= s.MaxRetries || !canRetry(err) {
			return val, attempts, err
		}
		sleep(backoff.Delay(attempt))
	}
}

// Do is the result-free convenience form.
func (s *Supervisor) Do(fn func() error) (attempts int, err error) {
	_, attempts, err = Do(s, func() (struct{}, error) { return struct{}{}, fn() })
	return attempts, err
}

// attemptOnce executes fn once, recovering panics and enforcing the
// timeout. The result channel is buffered so an abandoned goroutine
// delivers its late result into the void and exits instead of leaking.
func attemptOnce[T any](timeout time.Duration, fn func() (T, error)) (T, error) {
	done := make(chan attemptResult[T], 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				var zero T
				done <- attemptResult[T]{val: zero, err: &PanicError{Value: r}}
			}
		}()
		v, err := fn()
		done <- attemptResult[T]{val: v, err: err}
	}()
	if timeout <= 0 {
		r := <-done
		return r.val, r.err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.val, r.err
	case <-timer.C:
		var zero T
		return zero, &TimeoutError{After: timeout}
	}
}
