// Campaign journal: the campaign's record vocabulary over the shared
// internal/journal log — an append-only JSON-lines file in which every
// record is individually CRC-32 checked, so a campaign killed at any
// instant — including mid-write — leaves a journal that loads cleanly.
// Each line is
//
//	crc32(payload) as 8 hex digits, one space, the JSON payload, '\n'
//
// The first record is a header describing the campaign (events, reps,
// mode, params, seed); every later record is either a completed cell
// with its samples or a typed gap (a cell given up on). On resume the
// header is checked against the spec, a torn final record (the crash
// case) is dropped, and any damaged earlier record fails loudly with
// ErrJournalCorrupt rather than resuming from lies.
//
// Framing, CRC verification, torn-tail handling and version gating
// live in internal/journal (extracted from this file, byte-compatible);
// this file keeps the campaign's record types, the spec-match check,
// and the campaign-flavoured error surface unchanged.
package campaign

import (
	"encoding/json"
	"errors"
	"fmt"

	"numaperf/internal/journal"
)

// journalVersion guards the record schema.
const journalVersion = 1

type journalHeader struct {
	Kind      string    `json:"kind"`
	Version   int       `json:"v"`
	ParamName string    `json:"param_name"`
	Params    []float64 `json:"params"`
	Events    []string  `json:"events"`
	Reps      int       `json:"reps"`
	Mode      string    `json:"mode"`
	Seed      int64     `json:"seed"`
}

// cellRecord journals one completed run cell. Samples hold the accepted
// values keyed by event name; Bad holds values rejected as impossible
// (negative or non-finite), preserved so a resumed campaign reproduces
// the original quarantine decisions exactly.
type cellRecord struct {
	Kind    string             `json:"kind"`
	Key     string             `json:"key"`
	Samples map[string]float64 `json:"samples"`
	Bad     map[string]string  `json:"bad,omitempty"`
}

// gapRecord journals a cell the campaign gave up on (KeepGoing mode):
// the typed reason and the events that consequently lack a sample.
type gapRecord struct {
	Kind   string   `json:"kind"`
	Key    string   `json:"key"`
	Error  string   `json:"error"`
	Events []string `json:"events"`
}

// journalState is a loaded journal: the header plus completed cells and
// recorded gaps keyed by cell key.
type journalState struct {
	header    *journalHeader
	cells     map[string]*cellRecord
	gaps      map[string]*gapRecord
	truncated bool // a torn final record was dropped
}

func (s *journalState) completed() int { return len(s.cells) + len(s.gaps) }

// parseLine verifies and decodes one journal line into kind + payload.
func parseLine(line string) (kind string, payload []byte, err error) {
	return journal.ParseLine(line)
}

// loadJournal recovers the journal at path — a legacy single file or
// checkpointed segments, whichever recovery finds — over fsys. It
// returns the campaign-flavoured state plus the raw recovery, which
// OpenSegmented needs to continue the journal in place. A missing,
// empty or all-casualty journal returns (nil, nil, nil): nothing to
// resume (the same reading both campaign and fleet callers share).
func loadJournal(fsys journal.FS, path string) (*journalState, *journal.SegmentedState, error) {
	seg, err := journal.LoadSegmented(fsys, path, journalVersion)
	if err != nil {
		return nil, nil, reflavour(err)
	}
	if seg == nil {
		return nil, nil, nil
	}
	st, err := convertJournal(seg.State, nil)
	if err != nil {
		return nil, nil, err
	}
	return st, seg, nil
}

// reflavour turns the shared package's typed errors into the
// campaign's historical sentinels and messages so callers (and the
// fuzz corpus) see the exact pre-extraction surface.
func reflavour(err error) error {
	var ce *journal.CorruptError
	if errors.As(err, &ce) {
		if ce.Line > 0 {
			return fmt.Errorf("%w: line %d: %v", ErrJournalCorrupt, ce.Line, ce.Reason)
		}
		return fmt.Errorf("%w: %v", ErrJournalCorrupt, ce.Reason)
	}
	var ve *journal.VersionError
	if errors.As(err, &ve) {
		return fmt.Errorf("%w: journal version %d, want %d", ErrJournalMismatch, ve.Got, ve.Want)
	}
	return err
}

// parseJournal verifies and decodes raw journal bytes — the pure
// single-file core, separated so it can be fuzzed without a
// filesystem. Empty input returns (nil, nil); every failure is
// ErrJournalCorrupt or ErrJournalMismatch, never a panic.
func parseJournal(raw []byte) (*journalState, error) {
	return convertJournal(journal.Parse(raw, journalVersion))
}

// convertJournal maps a generic parsed journal into the campaign's
// record vocabulary.
func convertJournal(generic *journal.State, err error) (*journalState, error) {
	if err != nil {
		return nil, reflavour(err)
	}
	if generic == nil {
		return nil, nil
	}
	st := &journalState{
		cells:     make(map[string]*cellRecord),
		gaps:      make(map[string]*gapRecord),
		truncated: generic.Truncated,
	}
	var h journalHeader
	if err := json.Unmarshal(generic.Header.Payload, &h); err != nil {
		return nil, fmt.Errorf("%w: line %d: %v", ErrJournalCorrupt, generic.Header.Line, err)
	}
	st.header = &h
	for _, rec := range generic.Records {
		switch rec.Kind {
		case "cell":
			var c cellRecord
			if err := json.Unmarshal(rec.Payload, &c); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrJournalCorrupt, rec.Line, err)
			}
			st.cells[c.Key] = &c
		case "gap":
			var g gapRecord
			if err := json.Unmarshal(rec.Payload, &g); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrJournalCorrupt, rec.Line, err)
			}
			st.gaps[g.Key] = &g
		default:
			return nil, fmt.Errorf("%w: line %d: unknown record kind %q", ErrJournalCorrupt, rec.Line, rec.Kind)
		}
	}
	return st, nil
}

// matches checks a loaded header against the header a spec would write.
func (h *journalHeader) matches(want *journalHeader) error {
	switch {
	case h.ParamName != want.ParamName:
		return fmt.Errorf("%w: parameter %q, want %q", ErrJournalMismatch, h.ParamName, want.ParamName)
	case len(h.Params) != len(want.Params):
		return fmt.Errorf("%w: %d sweep points, want %d", ErrJournalMismatch, len(h.Params), len(want.Params))
	case h.Reps != want.Reps:
		return fmt.Errorf("%w: %d reps, want %d", ErrJournalMismatch, h.Reps, want.Reps)
	case h.Mode != want.Mode:
		return fmt.Errorf("%w: mode %s, want %s", ErrJournalMismatch, h.Mode, want.Mode)
	case h.Seed != want.Seed:
		return fmt.Errorf("%w: seed %d, want %d", ErrJournalMismatch, h.Seed, want.Seed)
	case len(h.Events) != len(want.Events):
		return fmt.Errorf("%w: %d events, want %d", ErrJournalMismatch, len(h.Events), len(want.Events))
	}
	for i := range h.Params {
		if h.Params[i] != want.Params[i] {
			return fmt.Errorf("%w: sweep point %d is %g, want %g", ErrJournalMismatch, i, h.Params[i], want.Params[i])
		}
	}
	for i := range h.Events {
		if h.Events[i] != want.Events[i] {
			return fmt.Errorf("%w: event %d is %q, want %q", ErrJournalMismatch, i, h.Events[i], want.Events[i])
		}
	}
	return nil
}
