package numaperf

import (
	"fmt"
	"sort"
	"strings"

	"numaperf/internal/exec"
	"numaperf/internal/metrics"
	"numaperf/internal/oslite"
)

// PlacementResult is the measured outcome of one placement
// configuration (page policy × thread mapping) for a workload — the
// practical question the paper's tools exist to answer: where should
// data and threads go?
type PlacementResult struct {
	// Policy is the page placement policy name.
	Policy string
	// Mapping is the thread pinning strategy name.
	Mapping string
	// Cycles is the mean makespan over the repetitions.
	Cycles float64
	// Seconds is the mean simulated wall time.
	Seconds float64
	// LocalDRAMPct is the NUMA locality of DRAM loads (percent).
	LocalDRAMPct float64
	// QPIGBs is the interconnect bandwidth consumed.
	QPIGBs float64
	// Speedup is relative to the slowest configuration (≥ 1).
	Speedup float64
}

// ComparePlacements runs the workload under every combination of page
// policy (first-touch, interleave, bind-0) and thread mapping (compact,
// scatter), repeating each configuration reps times, and returns the
// results ordered fastest first with speedups relative to the slowest.
func (s *Session) ComparePlacements(w Workload, reps int) ([]PlacementResult, error) {
	if reps <= 0 {
		reps = 1
	}
	type variant struct {
		name    string
		policy  oslite.Policy
		bind    int
		mapName string
		mapping exec.Mapping
	}
	var variants []variant
	for _, p := range []struct {
		name   string
		policy oslite.Policy
		bind   int
	}{
		{"first-touch", oslite.FirstTouch, 0},
		{"interleave", oslite.Interleave, 0},
		{"bind-0", oslite.Bind, 0},
	} {
		for _, m := range []struct {
			name    string
			mapping exec.Mapping
		}{
			{"compact", exec.Compact},
			{"scatter", exec.Scatter},
		} {
			variants = append(variants, variant{p.name, p.policy, p.bind, m.name, m.mapping})
		}
	}

	var out []PlacementResult
	for _, v := range variants {
		cfg := s.cfg
		cfg.Policy = v.policy
		cfg.BindNode = v.bind
		cfg.Mapping = v.mapping
		e, err := exec.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		var cycles, seconds, local, qpi float64
		for r := 0; r < reps; r++ {
			res, err := e.Run(w.Body())
			if err != nil {
				return nil, fmt.Errorf("numaperf: %s/%s: %w", v.name, v.mapName, err)
			}
			cycles += float64(res.Cycles)
			seconds += res.Seconds
			vals := metrics.Compute(res.Raw, res.Machine, res.Seconds)
			if mv, ok := metrics.ByName(vals, "local-dram"); ok && mv.OK {
				local += mv.V
			} else {
				local += 100 // no DRAM traffic at all counts as local
			}
			if mv, ok := metrics.ByName(vals, "qpi-bw"); ok && mv.OK {
				qpi += mv.V
			}
		}
		n := float64(reps)
		out = append(out, PlacementResult{
			Policy:       v.name,
			Mapping:      v.mapName,
			Cycles:       cycles / n,
			Seconds:      seconds / n,
			LocalDRAMPct: local / n,
			QPIGBs:       qpi / n,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cycles < out[j].Cycles })
	worst := out[len(out)-1].Cycles
	for i := range out {
		if out[i].Cycles > 0 {
			out[i].Speedup = worst / out[i].Cycles
		}
	}
	return out, nil
}

// RenderPlacements formats a placement comparison, fastest first.
func RenderPlacements(rows []PlacementResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-8s %14s %10s %10s %8s\n",
		"POLICY", "PINNING", "CYCLES", "LOCAL %", "QPI GB/s", "SPEEDUP")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-8s %14.4g %10.1f %10.3g %7.2fx\n",
			r.Policy, r.Mapping, r.Cycles, r.LocalDRAMPct, r.QPIGBs, r.Speedup)
	}
	return sb.String()
}
