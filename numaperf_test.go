package numaperf

import (
	"strings"
	"testing"

	"numaperf/internal/counters"
	"numaperf/internal/workloads"
)

func session(t *testing.T, opts ...Option) *Session {
	t.Helper()
	s, err := NewSession(append([]Option{WithMachineName("2s"), WithSeed(4)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionDefaults(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine().Sockets != 4 {
		t.Errorf("default machine is not the DL580: %d sockets", s.Machine().Sockets)
	}
}

func TestSessionOptionErrors(t *testing.T) {
	if _, err := NewSession(WithMachineName("nope")); err == nil {
		t.Error("unknown machine must fail")
	}
	if _, err := NewSession(WithMachine(nil)); err == nil {
		t.Error("nil machine must fail")
	}
}

func TestSessionRun(t *testing.T) {
	s := session(t)
	res, err := s.Run(workloads.Triad{Elements: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("no cycles")
	}
}

func TestSessionMeasureAndLookup(t *testing.T) {
	s := session(t)
	id, ok := LookupEvent("MEM_UOPS_RETIRED.ALL_LOADS")
	if !ok {
		t.Fatal("lookup failed")
	}
	m, err := s.Measure(workloads.Triad{Elements: 2048}, []EventID{id}, 2, Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mean(id) == 0 {
		t.Error("no loads measured")
	}
	if len(EventNames()) != len(AllEvents()) {
		t.Error("event name/ID mismatch")
	}
	if len(WorkloadNames()) == 0 {
		t.Error("no workloads")
	}
	if _, ok := WorkloadByName(WorkloadNames()[0]); !ok {
		t.Error("registry lookup")
	}
}

func TestSessionCompare(t *testing.T) {
	s := session(t)
	events := []EventID{counters.L1Miss, counters.L2PFRequests, counters.InstRetired}
	cmp, err := s.CompareEvents(CacheMissA(256), CacheMissB(256), events, 2, Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 3 {
		t.Errorf("%d rows", len(cmp.Rows))
	}
	if !strings.Contains(cmp.Render(), "EVENT") {
		t.Error("render")
	}
}

func TestSessionSweepThreads(t *testing.T) {
	s := session(t)
	sw, err := s.SweepThreads(func(threads int) Workload {
		return workloads.ParallelSort{Elements: 4096}
	}, []int{1, 2, 4}, []EventID{counters.CacheLockCycle, counters.InstRetired}, 1, Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 3 {
		t.Errorf("%d points", len(sw.Points))
	}
	if len(sw.Correlate()) == 0 {
		t.Error("no correlations")
	}
}

func TestSessionHistograms(t *testing.T) {
	s := session(t)
	wl := workloads.MLC{BufferBytes: 1 << 20, Chases: 5000}
	h, err := s.ExactLatencyHistogram(wl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() == 0 || !strings.Contains(h.Source, "mlc") {
		t.Errorf("exact histogram: total=%g source=%q", h.Total(), h.Source)
	}
	hc, err := s.LatencyHistogram(wl, HistogramOptions{SliceCycles: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if hc.Total() == 0 {
		t.Error("cycled histogram empty")
	}
}

func TestSessionPhases(t *testing.T) {
	s := session(t, WithThreads(2))
	rep, err := s.Phases(workloads.PhasedApp{RampChunks: 12, ChunkBytes: 64 << 10, ComputePasses: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Split.Segments) != 2 {
		t.Errorf("%d phases", len(rep.Split.Segments))
	}
}

func TestSessionTwoStep(t *testing.T) {
	s := session(t, WithoutNoise())
	st, err := s.TrainTwoStep(func(p float64) Workload {
		return workloads.Triad{Elements: int(p)}
	}, []float64{8192, 16384, 24576, 32768}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cost.R2 < 0.8 {
		t.Errorf("cost R² = %.3f", st.Cost.R2)
	}
	if st.PredictCycles(65536) <= 0 {
		t.Error("prediction must be positive")
	}
}

func TestSessionPoliciesAndMapping(t *testing.T) {
	for _, opt := range []Option{WithInterleave(), WithBindNode(1), WithScatter(), WithoutNoise()} {
		s := session(t, opt, WithThreads(2))
		if _, err := s.Run(workloads.Triad{Elements: 2048}); err != nil {
			t.Errorf("run failed: %v", err)
		}
	}
}

func TestBaselinesExposed(t *testing.T) {
	s := session(t)
	res, err := s.Run(workloads.Triad{Elements: 4096})
	if err != nil {
		t.Fatal(err)
	}
	c := Characterize(res)
	for _, b := range Baselines() {
		if p := b.PredictCycles(c, s.Machine()); p <= 0 {
			t.Errorf("%s predicted %g", b.Name(), p)
		}
	}
}

func TestSessionRegions(t *testing.T) {
	s := session(t)
	res, err := s.Run(workloads.CacheMissB(128))
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderRegions(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "traverse") {
		t.Errorf("region render missing traverse:\n%s", out)
	}
	resA, err := s.Run(workloads.CacheMissA(128))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CompareRegions(resA, res, []EventID{counters.L1Miss}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || RenderRegionDeltas(rows) == "" {
		t.Error("region comparison empty")
	}
}

func TestSessionCompareMany(t *testing.T) {
	s := session(t)
	mc, err := s.CompareMany(workloads.ParallelSort{Elements: 4096},
		[]int{1, 2, 4}, []EventID{counters.CacheLockCycle, counters.InstRetired}, 2, Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Labels) != 3 || len(mc.Rows) != 2 {
		t.Errorf("labels=%v rows=%d", mc.Labels, len(mc.Rows))
	}
	if !strings.Contains(mc.Render(), "T=4") {
		t.Error("render labels")
	}
}

func TestComparePlacements(t *testing.T) {
	s := session(t, WithThreads(4))
	// A SIFT stripe workload is locality sensitive: first-touch should
	// beat bind-0 under scatter pinning.
	rows, err := s.ComparePlacements(workloads.SIFT{Width: 128, Height: 128, Octaves: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 (3 policies × 2 mappings)", len(rows))
	}
	// Fastest first, speedups ≥ 1 and monotone.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Cycles > rows[i].Cycles {
			t.Error("rows not sorted by cycles")
		}
		if rows[i-1].Speedup < rows[i].Speedup {
			t.Error("speedups not monotone")
		}
	}
	if rows[len(rows)-1].Speedup != 1 {
		t.Errorf("slowest speedup = %g, want 1", rows[len(rows)-1].Speedup)
	}
	out := RenderPlacements(rows)
	if !strings.Contains(out, "POLICY") || !strings.Contains(out, "first-touch") {
		t.Errorf("render:\n%s", out)
	}
	// Locality: some configuration must differ from another (bind-0
	// under scatter cannot be 100% local with 2 sockets in play).
	minLocal, maxLocal := 101.0, -1.0
	for _, r := range rows {
		if r.LocalDRAMPct < minLocal {
			minLocal = r.LocalDRAMPct
		}
		if r.LocalDRAMPct > maxLocal {
			maxLocal = r.LocalDRAMPct
		}
	}
	if maxLocal-minLocal < 10 {
		t.Errorf("placement sweep showed no locality spread: %.1f..%.1f", minLocal, maxLocal)
	}
}

func TestComparePlacementsGUPS(t *testing.T) {
	s := session(t, WithThreads(4))
	// GUPS with a table larger than the L3 is DRAM-bound and locality
	// sensitive: compact pinning with locally-touched pages must win,
	// and placement must matter measurably.
	rows, err := s.ComparePlacements(workloads.GUPS{TableBytes: 64 << 20, Updates: 20_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Mapping != "compact" {
		t.Errorf("fastest config = %s/%s, want a compact one", rows[0].Policy, rows[0].Mapping)
	}
	if rows[0].LocalDRAMPct < 90 {
		t.Errorf("winner locality = %.1f%%, want ≈ 100%%", rows[0].LocalDRAMPct)
	}
	if rows[0].Speedup < 1.05 {
		t.Errorf("placement spread only %.2fx, want measurable", rows[0].Speedup)
	}
}
