// Command evsel is the CLI counterpart of the paper's EvSel tool: it
// lists all hardware counters of the (simulated) platform, measures a
// workload across all of them via register batching, compares two
// workloads per event with Welch's t-test, and sweeps a parameter to
// find counter correlations.
//
// Usage:
//
//	evsel -list                                   # event database
//	evsel -json > events.json                     # export the database
//	evsel -workload cachemiss-a                   # measure everything
//	evsel -workload cachemiss-a -compare cachemiss-b
//	evsel -workload parallelsort -sweep 1,2,4,8,12,18
//
// With -strict any hard data-quality degradation — non-finite samples
// dropped, series too damaged to test, degenerate statistics — turns
// into a nonzero exit after the annotated table is printed. Advisory
// diagnostics (constant series and the like) are reported in the DIAG
// column but do not affect the exit status.
//
// With -journal the measurement runs as a supervised campaign: every
// completed run cell is appended to a CRC-checked journal, each run is
// bounded by -run-timeout and retried up to -max-retries times, and a
// killed campaign continues with -resume exactly where it stopped.
// -keep-going records typed gaps instead of aborting on a bad cell, and
// counters that repeatedly fail or return impossible values are
// quarantined and reported. -parallel N measures up to N run cells
// concurrently; because results are committed in canonical cell order,
// the journal, tables and resume behaviour are byte-identical to a
// serial run — only the wall-clock time changes. -journal-segments N
// rotates the journal into checkpointed segments past N bytes, keeping
// a long campaign's journal bounded; with -strict a journal disk fault
// (ENOSPC, fsync failure) aborts the campaign, without it the run
// finishes in memory and the report is marked JOURNAL DEGRADED.
//
//	evsel -workload parallelsort -sweep 1,2,4 -journal sweep.jnl
//	evsel -workload parallelsort -sweep 1,2,4 -journal sweep.jnl -resume
//	evsel -workload parallelsort -sweep 1,2,4 -journal sweep.jnl -parallel 8
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"numaperf/internal/campaign"
	"numaperf/internal/counters"
	"numaperf/internal/evsel"
	"numaperf/internal/exec"
	"numaperf/internal/metrics"
	"numaperf/internal/perf"
	"numaperf/internal/profile"
	"numaperf/internal/topology"
	"numaperf/internal/workloads"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list all events with descriptions")
		jsonOut  = flag.Bool("json", false, "write the event database as JSON to stdout")
		workload = flag.String("workload", "", "workload to measure (see -workloads)")
		compare  = flag.String("compare", "", "second workload for a run comparison")
		sweepArg = flag.String("sweep", "", "comma-separated thread counts for a parameter sweep")
		machine  = flag.String("machine", "dl580", "machine: dl580, 2s, 8s, uma")
		threads  = flag.Int("threads", 1, "thread count")
		reps     = flag.Int("reps", 3, "repetitions per register batch")
		modeArg  = flag.String("mode", "batched", "batched, multiplexed or unlimited")
		events   = flag.String("events", "", "comma-separated event names (default: all)")
		wlList   = flag.Bool("workloads", false, "list available workloads")
		seed     = flag.Int64("seed", 1, "noise seed")
		minR     = flag.Float64("min-r", 0.5, "minimum |R| for sweep output")
		regions  = flag.Bool("regions", false, "print the per-code-region event attribution")
		derived  = flag.Bool("metrics", false, "print derived metrics (IPC, MPKI, bandwidths, ...)")
		saveTo   = flag.String("save", "", "save the measurement as JSON to this file")
		loadA    = flag.String("load-a", "", "load measurement A from a JSON file (with -load-b)")
		loadB    = flag.String("load-b", "", "load measurement B from a JSON file")

		strict = flag.Bool("strict", false, "exit nonzero when results rest on degraded data (non-finite samples dropped, unusable series, degenerate tests)")

		journal     = flag.String("journal", "", "run as a supervised campaign, journaling completed cells to this file")
		journalSegs = flag.Int("journal-segments", 0, "rotate the journal into checkpointed segments past this many bytes (0 = single file)")
		resume      = flag.Bool("resume", false, "resume a killed campaign from its journal (skips completed cells)")
		runTimeout  = flag.Duration("run-timeout", campaign.DefaultRunTimeout, "wall-clock bound per run attempt")
		maxRetries  = flag.Int("max-retries", campaign.DefaultMaxRetries, "retries per run cell before it becomes a gap")
		keepGoing   = flag.Bool("keep-going", false, "record typed gaps for failed cells instead of aborting the campaign")
		opBudget    = flag.Uint64("op-budget", 0, "abort any run that simulates more than this many operations (0 = unlimited)")
		parallel    = flag.Int("parallel", 1, "run cells measured concurrently; results are byte-identical at any setting")
	)
	flag.Parse()

	switch {
	case *list:
		for _, d := range counters.All() {
			pebs := ""
			if d.PEBS {
				pebs = " [PEBS]"
			}
			fmt.Printf("%-45s %02X/%02X %-7s%s\n  %s\n", d.Name, d.Code, d.Umask, d.Domain, pebs, d.Description)
		}
		return
	case *jsonOut:
		if err := counters.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	case *wlList:
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return
	case *loadA != "" && *loadB != "":
		ma, err := evsel.LoadMeasurementFile(*loadA)
		if err != nil {
			fatal(err)
		}
		mb, err := evsel.LoadMeasurementFile(*loadB)
		if err != nil {
			fatal(err)
		}
		cmp, err := evsel.Compare(ma, mb)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("comparing %s (A) with %s (B)\n\n", *loadA, *loadB)
		fmt.Print(cmp.SortByImpact().Where(evsel.NonZero()).Render())
		strictExit(*strict, cmp.HardDegraded(), "comparison")
		return
	case *workload == "":
		flag.Usage()
		os.Exit(2)
	}

	mach, ok := topology.ByName(*machine)
	if !ok {
		fatalf("unknown machine %q (have %v)", *machine, topology.MachineNames())
	}
	wl, ok := workloads.ByName(*workload)
	if !ok {
		fatalf("unknown workload %q (have %v)", *workload, workloads.Names())
	}
	mode, err := parseMode(*modeArg)
	if err != nil {
		fatal(err)
	}
	ids, err := parseEvents(*events)
	if err != nil {
		fatal(err)
	}
	mkEngine := func(threadCount int) *exec.Engine {
		e, err := exec.NewEngine(exec.Config{Machine: mach, Threads: threadCount, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		return e
	}

	// Campaign supervision: -journal, -resume or -parallel switches
	// measurement and sweep runs to the crash-tolerant campaign runner
	// (the only executor with a worker pool; -parallel therefore implies
	// campaign-mode measurement even without a journal).
	campaigning := *journal != "" || *resume || *parallel > 1
	opts := campaign.Options{
		RunTimeout:          *runTimeout,
		MaxRetries:          *maxRetries,
		OpBudget:            *opBudget,
		KeepGoing:           *keepGoing,
		Concurrency:         *parallel,
		JournalPath:         *journal,
		JournalSegmentBytes: *journalSegs,
		StrictJournal:       *strict,
		Resume:              *resume,
		BackoffSeed:         *seed,
		Logf:                func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	}
	// The flags speak plainly (0 = off); the Options zero values select
	// package defaults, so translate.
	if *runTimeout == 0 {
		opts.RunTimeout = -1
	}
	if *maxRetries == 0 {
		opts.MaxRetries = -1
	}
	campaignPoint := func(threadCount int, param float64) campaign.Point {
		return campaign.Point{Param: param, Mk: func(seed int64) (*exec.Engine, func(*exec.Thread), error) {
			e, err := exec.NewEngine(exec.Config{Machine: mach, Threads: threadCount, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return e, wl.Body(), nil
		}}
	}

	switch {
	case *sweepArg != "":
		var params []float64
		for _, s := range strings.Split(*sweepArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatalf("bad sweep value %q: %v", s, err)
			}
			params = append(params, float64(v))
		}
		var sweep *evsel.Sweep
		if campaigning {
			spec := campaign.Spec{ParamName: "threads", Events: ids, Reps: *reps, Mode: mode, Seed: *seed}
			for _, p := range params {
				spec.Points = append(spec.Points, campaignPoint(int(p), p))
			}
			rep, err := (&campaign.Runner{Spec: spec, Opts: opts}).Run()
			if err != nil {
				fatal(err)
			}
			sweep = &evsel.Sweep{ParamName: "threads"}
			for _, pr := range rep.Points {
				sweep.Points = append(sweep.Points, evsel.SweepPoint{Param: pr.Param, M: pr.M})
			}
			fmt.Print(sweep.Render(*minR))
			fmt.Print(rep.Summary())
			strictExit(*strict, sweep.HardDegraded(), "sweep")
			return
		} else {
			var err error
			sweep, err = evsel.RunSweep("threads", params,
				func(p float64) (*exec.Engine, func(*exec.Thread), error) {
					return mkEngine(int(p)), wl.Body(), nil
				}, ids, *reps, mode)
			if err != nil {
				fatal(err)
			}
		}
		fmt.Print(sweep.Render(*minR))
		strictExit(*strict, sweep.HardDegraded(), "sweep")

	case *compare != "":
		wlB, ok := workloads.ByName(*compare)
		if !ok {
			fatalf("unknown workload %q", *compare)
		}
		cmp, err := evsel.CompareWorkloads(mkEngine(*threads), wl.Body(),
			mkEngine(*threads), wlB.Body(), ids, *reps, mode)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("comparing %s (A) with %s (B)\n\n", wl.Name(), wlB.Name())
		fmt.Print(cmp.SortByImpact().Where(evsel.NonZero()).Render())
		strictExit(*strict, cmp.HardDegraded(), "comparison")

	default:
		if *derived {
			res, err := mkEngine(*threads).Run(wl.Body())
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s\n", wl.Name())
			fmt.Print(metrics.Render(metrics.Compute(res.Total, mach, res.Seconds)))
			return
		}
		if *regions {
			res, err := mkEngine(*threads).Run(wl.Body())
			if err != nil {
				fatal(err)
			}
			out, err := profile.Render(res, 8)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s\n%s", wl.Name(), out)
			return
		}
		var m *perf.Measurement
		var summary string
		if campaigning {
			spec := campaign.Spec{
				ParamName: "threads",
				Points:    []campaign.Point{campaignPoint(*threads, float64(*threads))},
				Events:    ids, Reps: *reps, Mode: mode, Seed: *seed,
			}
			rep, err := (&campaign.Runner{Spec: spec, Opts: opts}).Run()
			if err != nil {
				fatal(err)
			}
			m = rep.Points[0].M
			summary = rep.Summary()
		} else {
			var err error
			m, err = perf.Measure(mkEngine(*threads), wl.Body(), ids, *reps, mode)
			if err != nil {
				fatal(err)
			}
		}
		if *saveTo != "" {
			if err := evsel.SaveMeasurementFile(*saveTo, m); err != nil {
				fatal(err)
			}
			fmt.Printf("saved measurement to %s\n", *saveTo)
		}
		fmt.Printf("%s: %d runs, %d register batches (%s)\n\n", wl.Name(), m.Runs, m.Batches, m.Mode)
		fmt.Printf("%-45s %15s %12s\n", "EVENT", "MEAN", "CV")
		for _, id := range m.Events() {
			samples := m.Samples[id]
			mean := m.Mean(id)
			if mean == 0 {
				continue
			}
			cv := coefficientOfVariation(samples, mean)
			cover := ""
			if m.Partial {
				cover = fmt.Sprintf("  %3.0f%% cover", 100*m.Coverage(id))
			}
			fmt.Printf("%-45s %15.5g %11.2f%%%s\n", counters.Def(id).Name, mean, 100*cv, cover)
		}
		fmt.Print(summary)
		strictExit(*strict, nonFiniteSamples(m), "measurement")
	}
}

// nonFiniteSamples reports whether any recorded sample is NaN or ±Inf
// — the one data fault a plain measurement table can hide (the mean of
// a poisoned series is itself non-finite or silently wrong).
func nonFiniteSamples(m *perf.Measurement) bool {
	for _, samples := range m.Samples {
		for _, v := range samples {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
	}
	return false
}

// strictExit implements -strict: the annotated table has already been
// printed; hard degradation (non-finite samples dropped, unusable
// series, degenerate tests) additionally becomes a nonzero exit so
// scripts can gate on data quality. Advisory diagnostics — constant
// series, zero-variance ties — never trip it.
func strictExit(strict, hard bool, what string) {
	if !strict || !hard {
		return
	}
	fmt.Fprintf(os.Stderr, "evsel: -strict: %s rests on degraded data (hard diagnostics above)\n", what)
	os.Exit(1)
}

func coefficientOfVariation(samples []float64, mean float64) float64 {
	if len(samples) < 2 || mean == 0 {
		return 0
	}
	var s float64
	for _, v := range samples {
		d := v - mean
		s += d * d
	}
	return math.Sqrt(s/float64(len(samples)-1)) / mean
}

func parseMode(s string) (perf.Mode, error) {
	switch s {
	case "batched":
		return perf.Batched, nil
	case "multiplexed":
		return perf.Multiplexed, nil
	case "unlimited":
		return perf.Unlimited, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func parseEvents(csv string) ([]counters.EventID, error) {
	if csv == "" {
		out := make([]counters.EventID, counters.NumEvents)
		for i := range out {
			out[i] = counters.EventID(i)
		}
		return out, nil
	}
	var out []counters.EventID
	for _, name := range strings.Split(csv, ",") {
		id, ok := counters.Lookup(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown event %q", name)
		}
		out = append(out, id)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "evsel: %v\n", err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "evsel: "+format+"\n", args...)
	os.Exit(1)
}
