// Command evsel is the CLI counterpart of the paper's EvSel tool: it
// lists all hardware counters of the (simulated) platform, measures a
// workload across all of them via register batching, compares two
// workloads per event with Welch's t-test, and sweeps a parameter to
// find counter correlations.
//
// Usage:
//
//	evsel -list                                   # event database
//	evsel -json > events.json                     # export the database
//	evsel -workload cachemiss-a                   # measure everything
//	evsel -workload cachemiss-a -compare cachemiss-b
//	evsel -workload parallelsort -sweep 1,2,4,8,12,18
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"numaperf/internal/counters"
	"numaperf/internal/evsel"
	"numaperf/internal/exec"
	"numaperf/internal/metrics"
	"numaperf/internal/perf"
	"numaperf/internal/profile"
	"numaperf/internal/topology"
	"numaperf/internal/workloads"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list all events with descriptions")
		jsonOut  = flag.Bool("json", false, "write the event database as JSON to stdout")
		workload = flag.String("workload", "", "workload to measure (see -workloads)")
		compare  = flag.String("compare", "", "second workload for a run comparison")
		sweepArg = flag.String("sweep", "", "comma-separated thread counts for a parameter sweep")
		machine  = flag.String("machine", "dl580", "machine: dl580, 2s, 8s, uma")
		threads  = flag.Int("threads", 1, "thread count")
		reps     = flag.Int("reps", 3, "repetitions per register batch")
		modeArg  = flag.String("mode", "batched", "batched, multiplexed or unlimited")
		events   = flag.String("events", "", "comma-separated event names (default: all)")
		wlList   = flag.Bool("workloads", false, "list available workloads")
		seed     = flag.Int64("seed", 1, "noise seed")
		minR     = flag.Float64("min-r", 0.5, "minimum |R| for sweep output")
		regions  = flag.Bool("regions", false, "print the per-code-region event attribution")
		derived  = flag.Bool("metrics", false, "print derived metrics (IPC, MPKI, bandwidths, ...)")
		saveTo   = flag.String("save", "", "save the measurement as JSON to this file")
		loadA    = flag.String("load-a", "", "load measurement A from a JSON file (with -load-b)")
		loadB    = flag.String("load-b", "", "load measurement B from a JSON file")
	)
	flag.Parse()

	switch {
	case *list:
		for _, d := range counters.All() {
			pebs := ""
			if d.PEBS {
				pebs = " [PEBS]"
			}
			fmt.Printf("%-45s %02X/%02X %-7s%s\n  %s\n", d.Name, d.Code, d.Umask, d.Domain, pebs, d.Description)
		}
		return
	case *jsonOut:
		if err := counters.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	case *wlList:
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return
	case *loadA != "" && *loadB != "":
		ma, err := evsel.LoadMeasurementFile(*loadA)
		if err != nil {
			fatal(err)
		}
		mb, err := evsel.LoadMeasurementFile(*loadB)
		if err != nil {
			fatal(err)
		}
		cmp, err := evsel.Compare(ma, mb)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("comparing %s (A) with %s (B)\n\n", *loadA, *loadB)
		fmt.Print(cmp.SortByImpact().Where(evsel.NonZero()).Render())
		return
	case *workload == "":
		flag.Usage()
		os.Exit(2)
	}

	mach, ok := topology.ByName(*machine)
	if !ok {
		fatalf("unknown machine %q (have %v)", *machine, topology.MachineNames())
	}
	wl, ok := workloads.ByName(*workload)
	if !ok {
		fatalf("unknown workload %q (have %v)", *workload, workloads.Names())
	}
	mode, err := parseMode(*modeArg)
	if err != nil {
		fatal(err)
	}
	ids, err := parseEvents(*events)
	if err != nil {
		fatal(err)
	}
	mkEngine := func(threadCount int) *exec.Engine {
		e, err := exec.NewEngine(exec.Config{Machine: mach, Threads: threadCount, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		return e
	}

	switch {
	case *sweepArg != "":
		var params []float64
		for _, s := range strings.Split(*sweepArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatalf("bad sweep value %q: %v", s, err)
			}
			params = append(params, float64(v))
		}
		sweep, err := evsel.RunSweep("threads", params,
			func(p float64) (*exec.Engine, func(*exec.Thread), error) {
				return mkEngine(int(p)), wl.Body(), nil
			}, ids, *reps, mode)
		if err != nil {
			fatal(err)
		}
		fmt.Print(sweep.Render(*minR))

	case *compare != "":
		wlB, ok := workloads.ByName(*compare)
		if !ok {
			fatalf("unknown workload %q", *compare)
		}
		cmp, err := evsel.CompareWorkloads(mkEngine(*threads), wl.Body(),
			mkEngine(*threads), wlB.Body(), ids, *reps, mode)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("comparing %s (A) with %s (B)\n\n", wl.Name(), wlB.Name())
		fmt.Print(cmp.SortByImpact().Where(evsel.NonZero()).Render())

	default:
		if *derived {
			res, err := mkEngine(*threads).Run(wl.Body())
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s\n", wl.Name())
			fmt.Print(metrics.Render(metrics.Compute(res.Total, mach, res.Seconds)))
			return
		}
		if *regions {
			res, err := mkEngine(*threads).Run(wl.Body())
			if err != nil {
				fatal(err)
			}
			out, err := profile.Render(res, 8)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s\n%s", wl.Name(), out)
			return
		}
		m, err := perf.Measure(mkEngine(*threads), wl.Body(), ids, *reps, mode)
		if err != nil {
			fatal(err)
		}
		if *saveTo != "" {
			if err := evsel.SaveMeasurementFile(*saveTo, m); err != nil {
				fatal(err)
			}
			fmt.Printf("saved measurement to %s\n", *saveTo)
		}
		fmt.Printf("%s: %d runs, %d register batches (%s)\n\n", wl.Name(), m.Runs, m.Batches, m.Mode)
		fmt.Printf("%-45s %15s %12s\n", "EVENT", "MEAN", "CV")
		for _, id := range m.Events() {
			samples := m.Samples[id]
			mean := m.Mean(id)
			if mean == 0 {
				continue
			}
			cv := coefficientOfVariation(samples, mean)
			fmt.Printf("%-45s %15.5g %11.2f%%\n", counters.Def(id).Name, mean, 100*cv)
		}
	}
}

func coefficientOfVariation(samples []float64, mean float64) float64 {
	if len(samples) < 2 || mean == 0 {
		return 0
	}
	var s float64
	for _, v := range samples {
		d := v - mean
		s += d * d
	}
	return math.Sqrt(s/float64(len(samples)-1)) / mean
}

func parseMode(s string) (perf.Mode, error) {
	switch s {
	case "batched":
		return perf.Batched, nil
	case "multiplexed":
		return perf.Multiplexed, nil
	case "unlimited":
		return perf.Unlimited, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func parseEvents(csv string) ([]counters.EventID, error) {
	if csv == "" {
		out := make([]counters.EventID, counters.NumEvents)
		for i := range out {
			out[i] = counters.EventID(i)
		}
		return out, nil
	}
	var out []counters.EventID
	for _, name := range strings.Split(csv, ",") {
		id, ok := counters.Lookup(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown event %q", name)
		}
		out = append(out, id)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "evsel: %v\n", err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "evsel: "+format+"\n", args...)
	os.Exit(1)
}
