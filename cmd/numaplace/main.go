// Command numaplace answers the practical question behind the paper's
// tooling: where should data and threads go? It runs a workload under
// every combination of page placement policy (first-touch, interleave,
// bind) and thread pinning (compact, scatter), measures the counter
// signature of each, and prints the configurations fastest first with
// NUMA locality and interconnect traffic alongside.
//
// Usage:
//
//	numaplace -workload sift -threads 8
//	numaplace -workload parallelsort -threads 16 -machine dl580 -reps 3
package main

import (
	"flag"
	"fmt"
	"os"

	"numaperf"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to place (see -workloads)")
		machine  = flag.String("machine", "dl580", "machine: dl580, 2s, 8s, uma")
		threads  = flag.Int("threads", 8, "thread count")
		reps     = flag.Int("reps", 2, "repetitions per configuration")
		seed     = flag.Int64("seed", 1, "noise seed")
		wlList   = flag.Bool("workloads", false, "list available workloads")
	)
	flag.Parse()

	if *wlList {
		for _, n := range numaperf.WorkloadNames() {
			fmt.Println(n)
		}
		return
	}
	if *workload == "" {
		flag.Usage()
		os.Exit(2)
	}
	wl, ok := numaperf.WorkloadByName(*workload)
	if !ok {
		fatalf("unknown workload %q (have %v)", *workload, numaperf.WorkloadNames())
	}
	s, err := numaperf.NewSession(
		numaperf.WithMachineName(*machine),
		numaperf.WithThreads(*threads),
		numaperf.WithSeed(*seed),
	)
	if err != nil {
		fatalf("%v", err)
	}
	rows, err := s.ComparePlacements(wl, *reps)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s on %s, %d threads, %d reps per configuration\n\n",
		wl.Name(), s.Machine().Name, *threads, *reps)
	fmt.Print(numaperf.RenderPlacements(rows))
	best := rows[0]
	fmt.Printf("\nrecommendation: %s pages with %s pinning (%.2fx over the worst choice)\n",
		best.Policy, best.Mapping, best.Speedup)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "numaplace: "+format+"\n", args...)
	os.Exit(1)
}
