// Command numabench regenerates the paper's tables and figures on the
// simulated machines. Every artefact of the evaluation section has an
// experiment ID; -exp all runs the full set.
//
// Usage:
//
//	numabench -exp fig8                 # one experiment on the DL580
//	numabench -exp all -quick           # fast pass over everything
//	numabench -exp fig9 -machine 2s     # different machine
//	numabench -list                     # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"numaperf/internal/experiments"
	"numaperf/internal/topology"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment ID or 'all'")
		machine = flag.String("machine", "dl580", "machine: dl580, 2s, 8s, uma")
		quick   = flag.Bool("quick", false, "downsized workloads for a fast pass")
		seed    = flag.Int64("seed", 42, "measurement noise seed")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-20s %s\n", id, title)
		}
		return
	}
	mach, ok := topology.ByName(*machine)
	if !ok {
		fmt.Fprintf(os.Stderr, "numabench: unknown machine %q (have %v)\n", *machine, topology.MachineNames())
		os.Exit(2)
	}
	cfg := experiments.Config{Machine: mach, Quick: *quick, Seed: *seed}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "numabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
	}
}
