package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"numaperf/internal/experiments"
	"numaperf/internal/topology"
)

// -update rewrites the golden files from the current output instead of
// comparing against them:
//
//	go test ./cmd/numabench -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenReports pins the full rendered output of representative
// experiments — an EvSel comparison (fig8), an EvSel sweep (fig9) and a
// Phasenprüfer split (fig11) — byte for byte. The simulator is
// deterministic for a fixed seed, so any diff here is a behaviour
// change in the measurement stack, not noise; if the change is
// intentional, regenerate with -update and review the diff.
func TestGoldenReports(t *testing.T) {
	cfg := experiments.Config{Machine: topology.DL580Gen9(), Quick: true, Seed: 42}
	for _, id := range []string{"fig8", "fig9", "fig11"} {
		t.Run(id, func(t *testing.T) {
			rep, err := experiments.Run(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := rep.String()
			golden := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("%s output diverged from %s\n--- got ---\n%s\n--- want ---\n%s",
					id, golden, got, want)
			}
		})
	}
}
