// Command memhist-fleet runs a fleet campaign: it coordinates many
// memhist probes (cmd/memhist-probe -fleet-coordinator) into one
// measurement instrument. Probes dial in and register, are supervised
// through heartbeats (healthy → suspect → dead, with strike accounting
// that quarantines repeat offenders), and the campaign's cells scatter
// across the live fleet. Cells stranded on dead or slow probes
// re-dispatch with deterministic backoff; the gathered histogram is
// byte-identical no matter which probes failed, as long as every cell
// eventually completes.
//
// Usage:
//
//	memhist-fleet -listen :9845 -probes 4 -workload mlc-local -cells 16
//	memhist-fleet -self-probes 2 -workload triad -cells 8 -exact
//	memhist-fleet -probes 8 -suspect-after 5s -dead-after 15s -probe-strikes 3 -strict
//	memhist-fleet -probes 4 -workload mlc-local -cells 64 -journal run.jnl
//	memhist-fleet -probes 4 -workload mlc-local -cells 64 -journal run.jnl -resume
//	memhist-fleet -probes 4 -workload mlc-local -cells 64 -stats-interval 2s
//
// -self-probes spawns in-process probe agents (useful on a single node
// and in tests); -strict turns gaps and quarantine verdicts into a
// nonzero exit. -journal makes the campaign crash-recoverable: every
// committed cell and probe-strike change is CRC-framed and fsynced
// before it is acknowledged, and a coordinator restarted with -resume
// replays the journal, re-scatters only the missing cells to the
// re-registering probes, and produces the same report an uninterrupted
// run would have. -journal-segments N rotates the journal into
// checkpointed segments past N bytes, keeping a week-long campaign's
// journal bounded; with -strict a journal disk fault (ENOSPC, fsync
// failure) aborts the campaign instead of degrading to in-memory.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"numaperf/internal/fleet"
	"numaperf/internal/journal"
	"numaperf/internal/memhist"
	"numaperf/internal/topology"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global parts so tests can drive the
// full lifecycle.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memhist-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen      = fs.String("listen", "127.0.0.1:9845", "TCP address probes register on")
		probes      = fs.Int("probes", 1, "healthy probes to wait for before starting the campaign")
		waitTimeout = fs.Duration("wait-timeout", time.Minute, "how long to wait for the fleet to assemble")
		selfProbes  = fs.Int("self-probes", 0, "spawn this many in-process probe agents")

		heartbeat    = fs.Duration("heartbeat-interval", fleet.DefaultHeartbeatInterval, "heartbeat period of self-probes")
		suspectAfter = fs.Duration("suspect-after", fleet.DefaultSuspectAfter, "heartbeat silence before a probe is suspect")
		deadAfter    = fs.Duration("dead-after", fleet.DefaultDeadAfter, "heartbeat silence before a probe is dead")
		probeStrikes = fs.Int("probe-strikes", fleet.DefaultProbeStrikes, "strikes before a probe is quarantined")
		cellTimeout  = fs.Duration("cell-timeout", fleet.DefaultCellTimeout, "per-cell dispatch deadline")
		maxRetries   = fs.Int("max-retries", fleet.DefaultMaxRetries, "re-dispatch allowance per cell")
		maxInflight  = fs.Int("max-inflight", 1, "cells in flight per probe at a time")
		keepGoing    = fs.Bool("keep-going", true, "record unserved cells as gaps instead of aborting")
		strict       = fs.Bool("strict", false, "exit nonzero on gaps or quarantined probes")
		journalPath  = fs.String("journal", "", "crash journal: fsync every committed cell to this file")
		journalSegs  = fs.Int("journal-segments", 0, "rotate the journal into checkpointed segments past this many bytes (0 = single file)")
		resume       = fs.Bool("resume", false, "resume a crashed campaign from -journal, re-scattering only missing cells")
		statsEvery   = fs.Duration("stats-interval", 0, "emit CRC-framed campaign health/strike/in-flight snapshot lines this often (0 = off)")

		workload = fs.String("workload", "", "workload to profile")
		machine  = fs.String("machine", "dl580", "machine: dl580, 2s, 8s, uma")
		threads  = fs.Int("threads", 1, "thread count per cell")
		boundCSV = fs.String("bounds", "", "comma-separated latency thresholds in cycles")
		slice    = fs.Uint64("slice", 0, "threshold-cycling slice in cycles (0 = 100 Hz)")
		cells    = fs.Int("cells", 4, "measurement cells to shard across the fleet")
		repsPer  = fs.Int("reps-per-cell", 1, "cycled runs each cell averages")
		adaptive = fs.Bool("adaptive", false, "adaptive dwell-repair cycling")
		exact    = fs.Bool("exact", false, "full-information sampling instead of threshold cycling")
		seed     = fs.Int64("seed", 1, "campaign base seed (cell i uses seed+i+1)")
		modeArg  = fs.String("mode", "occurrences", "occurrences or costs")
		width    = fs.Int("width", 60, "histogram bar width")
		verbose  = fs.Bool("v", false, "log fleet events to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workload == "" {
		fmt.Fprintln(stderr, "memhist-fleet: -workload required")
		fs.Usage()
		return 2
	}
	// Flag sanity that must fail before any socket is opened: a typo'd
	// invocation should not leave a half-assembled fleet behind.
	if *resume && *journalPath == "" {
		fmt.Fprintln(stderr, "memhist-fleet: -resume requires -journal (nothing to resume from)")
		return 2
	}
	if *journalSegs < 0 {
		fmt.Fprintf(stderr, "memhist-fleet: -journal-segments must not be negative (got %d)\n", *journalSegs)
		return 2
	}
	if *journalSegs > 0 && *journalPath == "" {
		fmt.Fprintln(stderr, "memhist-fleet: -journal-segments requires -journal (nothing to rotate)")
		return 2
	}
	if *cellTimeout < 0 {
		fmt.Fprintf(stderr, "memhist-fleet: -cell-timeout must not be negative (got %s)\n", *cellTimeout)
		return 2
	}
	if *maxInflight <= 0 {
		fmt.Fprintf(stderr, "memhist-fleet: -max-inflight must be positive (got %d)\n", *maxInflight)
		return 2
	}
	if *statsEvery < 0 {
		fmt.Fprintf(stderr, "memhist-fleet: -stats-interval must not be negative (got %s)\n", *statsEvery)
		return 2
	}
	if *probes <= 0 && *selfProbes <= 0 {
		fmt.Fprintln(stderr, "memhist-fleet: a campaign needs probes: set -probes or -self-probes")
		return 2
	}
	mode := memhist.Occurrences
	switch *modeArg {
	case "occurrences":
	case "costs":
		mode = memhist.Costs
	default:
		fmt.Fprintf(stderr, "memhist-fleet: unknown mode %q\n", *modeArg)
		return 2
	}
	mach, ok := topology.ByName(*machine)
	if !ok {
		fmt.Fprintf(stderr, "memhist-fleet: unknown machine %q (have %v)\n", *machine, topology.MachineNames())
		return 1
	}
	bounds, err := parseBounds(*boundCSV)
	if err != nil {
		fmt.Fprintf(stderr, "memhist-fleet: %v\n", err)
		return 2
	}

	spec := fleet.Spec{
		Workload:    *workload,
		Machine:     *machine,
		Threads:     *threads,
		Bounds:      bounds,
		SliceCycles: *slice,
		Adaptive:    *adaptive,
		Exact:       *exact,
		Cells:       *cells,
		RepsPerCell: *repsPer,
		Seed:        *seed,
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(stderr, "memhist-fleet: %v\n", err)
		return 2
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }
	}
	coord := fleet.NewCoordinator(fleet.Options{
		SuspectAfter:        *suspectAfter,
		DeadAfter:           *deadAfter,
		ProbeStrikes:        *probeStrikes,
		CellTimeout:         *cellTimeout,
		MaxRetries:          *maxRetries,
		KeepGoing:           *keepGoing,
		JournalPath:         *journalPath,
		JournalSegmentBytes: *journalSegs,
		StrictJournal:       *strict,
		Resume:              *resume,
		Logf:                logf,

		MaxInflightPerProbe: *maxInflight,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "memhist-fleet: %v\n", err)
		return 1
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- coord.Serve(ln) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = coord.Shutdown(sctx)
		<-serveErr
	}()
	fmt.Fprintf(stdout, "memhist-fleet: coordinating on %s (suspect %s, dead %s, %d strikes)\n",
		ln.Addr(), *suspectAfter, *deadAfter, *probeStrikes)

	// Self-probes: in-process agents for single-node runs and tests.
	agentCtx, stopAgents := context.WithCancel(ctx)
	defer stopAgents()
	for i := 0; i < *selfProbes; i++ {
		agent := &fleet.ProbeAgent{
			ID:                fmt.Sprintf("self-%d", i+1),
			Coordinator:       ln.Addr().String(),
			HeartbeatInterval: *heartbeat,
			Logf:              logf,
		}
		go func() { _ = agent.Run(agentCtx) }()
	}

	wctx, wcancel := context.WithTimeout(ctx, *waitTimeout)
	err = coord.WaitForProbes(wctx, *probes)
	wcancel()
	if err != nil {
		fmt.Fprintf(stderr, "memhist-fleet: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "memhist-fleet: %d probe(s) registered; scattering %d cell(s)\n", *probes, spec.Cells)

	// -stats-interval: periodic machine-readable health snapshots while
	// the campaign runs, one CRC-framed JSON line per tick on the
	// journal line format. The emitter is joined before the summary
	// prints so snapshot lines never interleave with the report.
	var statsDone chan struct{}
	var statsStop context.CancelFunc
	if *statsEvery > 0 {
		var sctx context.Context
		sctx, statsStop = context.WithCancel(ctx)
		statsDone = make(chan struct{})
		go emitStats(sctx, coord, *statsEvery, stdout, statsDone)
	}

	rep, err := coord.RunCampaign(ctx, spec)
	if statsStop != nil {
		statsStop()
		<-statsDone
	}
	if err != nil {
		fmt.Fprintf(stderr, "memhist-fleet: %v\n", err)
		return 1
	}

	fmt.Fprint(stdout, rep.Summary())
	if rep.Histogram != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, rep.Histogram.Render(mode, *width))
		fmt.Fprintln(stdout, "\npeaks:")
		for _, p := range rep.Histogram.Annotate(mach) {
			hi := fmt.Sprint(p.Hi)
			if p.Hi == 0 {
				hi = "∞"
			}
			fmt.Fprintf(stdout, "  [%d, %s) cycles: %-14s (%.4g events)\n", p.Lo, hi, p.Label, p.Count)
		}
		if rep.Histogram.Quality != nil {
			fmt.Fprintf(stdout, "\nsampling fidelity: %s\n", rep.Histogram.Quality)
		}
	}

	// -strict: the report above is always printed; completeness decides
	// the exit code, matching the other CLIs' strict mode.
	if *strict {
		failed := false
		if !rep.Complete() {
			fmt.Fprintf(stderr, "memhist-fleet: -strict: %d cell(s) gapped\n", len(rep.Gaps))
			failed = true
		}
		if len(rep.Quarantined) > 0 {
			fmt.Fprintf(stderr, "memhist-fleet: -strict: %d probe(s) quarantined\n", len(rep.Quarantined))
			failed = true
		}
		if failed {
			return 1
		}
	}
	return 0
}

// statsSnapshot is one -stats-interval line: coordinator campaign
// accounting plus per-probe health, strike, and in-flight rows. It is
// emitted as a CRC-framed JSON line on the internal/journal line
// format so downstream tooling can checksum-verify each snapshot.
type statsSnapshot struct {
	Kind         string      `json:"kind"`
	Seq          int         `json:"seq"`
	Active       bool        `json:"active"`
	Cells        int         `json:"cells"`
	Completed    int         `json:"completed"`
	Dispatches   int         `json:"dispatches"`
	Backpressure int         `json:"backpressure,omitempty"`
	Probes       []probeStat `json:"probes"`
}

type probeStat struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Strikes  int    `json:"strikes,omitempty"`
	Inflight int    `json:"inflight,omitempty"`
}

// emitStats writes one statsSnapshot line per interval tick until ctx
// is cancelled, then closes done. Each line merges the coordinator's
// campaign-loop progress with the health tracker's probe view.
func emitStats(ctx context.Context, coord *fleet.Coordinator, every time.Duration, w io.Writer, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	seq := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		seq++
		prog := coord.Progress()
		snap := statsSnapshot{
			Kind:         "stats",
			Seq:          seq,
			Active:       prog.Active,
			Cells:        prog.Cells,
			Completed:    prog.Completed,
			Dispatches:   prog.Dispatches,
			Backpressure: prog.Backpressure,
			Probes:       []probeStat{},
		}
		for _, p := range coord.Tracker().Snapshot() {
			snap.Probes = append(snap.Probes, probeStat{
				ID:       p.ID,
				State:    p.State.String(),
				Strikes:  p.Strikes,
				Inflight: prog.InflightByProbe[p.ID],
			})
		}
		payload, err := json.Marshal(snap)
		if err != nil {
			continue
		}
		_, _ = w.Write(journal.Frame(payload))
	}
}

func parseBounds(csv string) ([]uint64, error) {
	if csv == "" {
		return nil, nil
	}
	var out []uint64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
