package main

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"numaperf/internal/exec"
	"numaperf/internal/journal"
	"numaperf/internal/workloads"
)

// cliTinyWorkload keeps the end-to-end test fast: a few hundred loads
// over a 16 KiB buffer instead of a paper-scale working set.
type cliTinyWorkload struct{}

func (cliTinyWorkload) Name() string { return "fleet-cli-tiny" }
func (cliTinyWorkload) Body() func(*exec.Thread) {
	return func(t *exec.Thread) {
		buf := t.Alloc(1 << 14)
		for i := uint64(0); i < 256; i++ {
			t.Load(buf.Addr(i * 64 % (1 << 14)))
		}
	}
}

func TestMain(m *testing.M) {
	workloads.Register("fleet-cli-tiny", func() workloads.Workload { return cliTinyWorkload{} })
	m.Run()
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{}, // -workload required
		{"-workload", "triad", "-mode", "sideways"},
		{"-workload", "triad", "-bounds", "4,oops"},
		{"-workload", "triad", "-cells", "5000"}, // oversized spec
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := run(context.Background(), args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
	}
}

// TestRunFlagSanityFailsBeforeDialing proves the flag cross-checks
// reject a doomed invocation before any socket is opened: every case
// carries a -listen address that cannot be bound, so reaching the
// network layer at all would flip the exit code from 2 to 1.
func TestRunFlagSanityFailsBeforeDialing(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"resume-without-journal", []string{"-workload", "triad", "-resume"}},
		{"negative-cell-timeout", []string{"-workload", "triad", "-cell-timeout", "-3s"}},
		{"no-probes-at-all", []string{"-workload", "triad", "-probes", "0", "-self-probes", "0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut strings.Builder
			args := append([]string{"-listen", "unresolvable.invalid:0"}, tc.args...)
			if code := run(context.Background(), args, &out, &errOut); code != 2 {
				t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errOut.String())
			}
		})
	}
}

func TestRunRejectsUnknownMachine(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-workload", "triad", "-machine", "mystery"}, &out, &errOut); code != 1 {
		t.Errorf("unknown machine exit %d, want 1", code)
	}
}

func TestRunWaitForProbesTimesOut(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{
		"-workload", "triad", "-listen", "127.0.0.1:0",
		"-probes", "1", "-wait-timeout", "100ms",
	}
	if code := run(context.Background(), args, &out, &errOut); code != 1 {
		t.Errorf("probe-less run exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
}

// TestRunJournalResumeEndToEnd exercises the crash-journal wiring: a
// journaled run commits every cell, a re-run without -resume refuses to
// clobber the journal, and a -resume run replays all four cells without
// re-measuring a thing.
func TestRunJournalResumeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	jpath := filepath.Join(t.TempDir(), "fleet.jnl")
	base := []string{
		"-listen", "127.0.0.1:0",
		"-self-probes", "1", "-probes", "1",
		"-heartbeat-interval", "20ms",
		"-workload", "fleet-cli-tiny", "-machine", "2s",
		"-bounds", "4,64,256", "-cells", "4",
		"-seed", "11", "-journal", jpath,
	}
	var out, errOut strings.Builder
	if code := run(ctx, base, &out, &errOut); code != 0 {
		t.Fatalf("journaled run = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run(ctx, base, &out, &errOut); code != 1 {
		t.Fatalf("re-run over an existing journal = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "journal already exists") {
		t.Errorf("clobber refusal not diagnosed: %s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run(ctx, append(base, "-resume"), &out, &errOut); code != 0 {
		t.Fatalf("resume run = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if got := out.String(); !strings.Contains(got, "replayed: 4 cell(s)") {
		t.Errorf("resume output missing replay accounting:\n%s", got)
	}
}

// TestRunStatsIntervalEndToEnd proves -stats-interval emits verifiable
// snapshot lines: each one is CRC-framed on the journal line format,
// decodes as a kind:"stats" record, and carries a per-probe row with a
// known health state for every registered probe.
func TestRunStatsIntervalEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var out, errOut strings.Builder
	args := []string{
		"-listen", "127.0.0.1:0",
		"-self-probes", "2", "-probes", "2",
		"-heartbeat-interval", "20ms",
		"-workload", "fleet-cli-tiny", "-machine", "2s",
		"-bounds", "4,64,256", "-cells", "8", "-reps-per-cell", "2",
		"-seed", "11", "-stats-interval", "1ms",
	}
	if code := run(ctx, args, &out, &errOut); code != 0 {
		t.Fatalf("run = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	snaps := 0
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.Contains(line, `"kind":"stats"`) {
			continue
		}
		kind, payload, err := journal.ParseLine(line)
		if err != nil {
			t.Fatalf("stats line fails CRC verification: %v\nline: %s", err, line)
		}
		if kind != "stats" {
			t.Fatalf("stats line kind = %q, want stats", kind)
		}
		var snap statsSnapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			t.Fatalf("stats payload undecodable: %v", err)
		}
		if snap.Seq <= snaps {
			t.Errorf("snapshot seq %d not increasing (previous count %d)", snap.Seq, snaps)
		}
		if snap.Cells != 0 && snap.Cells != 8 {
			t.Errorf("snapshot cells = %d, want 0 (pre-campaign) or 8", snap.Cells)
		}
		for _, p := range snap.Probes {
			switch p.State {
			case "healthy", "suspect", "dead", "quarantined":
			default:
				t.Errorf("probe %s has unknown state %q", p.ID, p.State)
			}
		}
		snaps = snap.Seq
	}
	if snaps == 0 {
		t.Fatalf("no stats snapshots in output:\n%s", out.String())
	}
	// The emitter is joined before the summary prints, so the report
	// block must come out contiguous: no stats line after the summary.
	sum := strings.Index(out.String(), "cells completed")
	last := strings.LastIndex(out.String(), `"kind":"stats"`)
	if sum < 0 {
		t.Fatalf("summary missing from output:\n%s", out.String())
	}
	if last > sum {
		t.Errorf("stats line interleaved after the summary:\n%s", out.String())
	}
}

// TestRunSelfProbesEndToEnd drives the full lifecycle: coordinator up,
// two in-process probes register, the campaign scatters and gathers,
// and the merged report renders.
func TestRunSelfProbesEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var out, errOut strings.Builder
	args := []string{
		"-listen", "127.0.0.1:0",
		"-self-probes", "2", "-probes", "2",
		"-heartbeat-interval", "20ms",
		"-workload", "fleet-cli-tiny", "-machine", "2s",
		"-bounds", "4,64,256", "-cells", "4", "-reps-per-cell", "1",
		"-seed", "11", "-strict",
	}
	if code := run(ctx, args, &out, &errOut); code != 0 {
		t.Fatalf("run = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"probe(s) registered",
		"cells completed",
		"peaks:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
