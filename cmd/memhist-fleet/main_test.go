package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"numaperf/internal/exec"
	"numaperf/internal/workloads"
)

// cliTinyWorkload keeps the end-to-end test fast: a few hundred loads
// over a 16 KiB buffer instead of a paper-scale working set.
type cliTinyWorkload struct{}

func (cliTinyWorkload) Name() string { return "fleet-cli-tiny" }
func (cliTinyWorkload) Body() func(*exec.Thread) {
	return func(t *exec.Thread) {
		buf := t.Alloc(1 << 14)
		for i := uint64(0); i < 256; i++ {
			t.Load(buf.Addr(i * 64 % (1 << 14)))
		}
	}
}

func TestMain(m *testing.M) {
	workloads.Register("fleet-cli-tiny", func() workloads.Workload { return cliTinyWorkload{} })
	m.Run()
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{}, // -workload required
		{"-workload", "triad", "-mode", "sideways"},
		{"-workload", "triad", "-bounds", "4,oops"},
		{"-workload", "triad", "-cells", "5000"}, // oversized spec
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := run(context.Background(), args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
	}
}

func TestRunRejectsUnknownMachine(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-workload", "triad", "-machine", "mystery"}, &out, &errOut); code != 1 {
		t.Errorf("unknown machine exit %d, want 1", code)
	}
}

func TestRunWaitForProbesTimesOut(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{
		"-workload", "triad", "-listen", "127.0.0.1:0",
		"-probes", "1", "-wait-timeout", "100ms",
	}
	if code := run(context.Background(), args, &out, &errOut); code != 1 {
		t.Errorf("probe-less run exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
}

// TestRunSelfProbesEndToEnd drives the full lifecycle: coordinator up,
// two in-process probes register, the campaign scatters and gathers,
// and the merged report renders.
func TestRunSelfProbesEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var out, errOut strings.Builder
	args := []string{
		"-listen", "127.0.0.1:0",
		"-self-probes", "2", "-probes", "2",
		"-heartbeat-interval", "20ms",
		"-workload", "fleet-cli-tiny", "-machine", "2s",
		"-bounds", "4,64,256", "-cells", "4", "-reps-per-cell", "1",
		"-seed", "11", "-strict",
	}
	if code := run(ctx, args, &out, &errOut); code != 0 {
		t.Fatalf("run = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"probe(s) registered",
		"cells completed",
		"peaks:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
