package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numaperf/internal/journal"
)

type rec struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
}

type hdr struct {
	Kind string `json:"kind"`
	V    int    `json:"v"`
}

// buildJournal writes a journal with the given rotation budget and
// returns its base path.
func buildJournal(t *testing.T, segBytes, records int) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), "run.jnl")
	w, err := journal.OpenSegmented(nil, base, nil, journal.SegmentedOptions{
		SegmentBytes: segBytes, Version: 1, Header: &hdr{Kind: "header", V: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := w.Append(&rec{Kind: "rec", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return base
}

// livePath returns the file currently holding the journal's tail.
func livePath(t *testing.T, base string) string {
	t.Helper()
	st, err := journal.LoadSegmented(nil, base, journal.AnyVersion)
	if err != nil || st == nil {
		t.Fatalf("load: (%v, %v)", st, err)
	}
	return st.Path
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-verify"},
		{"-verify", "-repair", "x"},
		{"x"},
		{"-bogus", "x"},
	} {
		if code, _, _ := runCLI(t, args...); code != exitUsage {
			t.Errorf("args %v: exit %d, want %d", args, code, exitUsage)
		}
	}
	if code, _, _ := runCLI(t, "-verify", filepath.Join(t.TempDir(), "nope")); code != exitUsage {
		t.Error("missing journal did not exit with a usage/IO error")
	}
}

func TestVerifyCleanJournals(t *testing.T) {
	for _, tc := range []struct {
		name     string
		segBytes int
	}{{"legacy", 0}, {"segmented", 96}} {
		t.Run(tc.name, func(t *testing.T) {
			base := buildJournal(t, tc.segBytes, 12)
			code, out, _ := runCLI(t, "-verify", base)
			if code != exitClean {
				t.Fatalf("exit %d, want clean\n%s", code, out)
			}
			if !strings.Contains(out, "clean") {
				t.Errorf("output missing verdict:\n%s", out)
			}
		})
	}
}

func TestVerifyVersionSkew(t *testing.T) {
	base := buildJournal(t, 0, 3)
	if code, _, _ := runCLI(t, "-verify", "-version", "1", base); code != exitClean {
		t.Errorf("matching -version: exit %d, want clean", code)
	}
	code, out, _ := runCLI(t, "-verify", "-version", "9", base)
	if code != exitVersion {
		t.Errorf("skewed -version: exit %d, want %d\n%s", code, exitVersion, out)
	}
	// Without -version the tool is version-soft.
	if code, _, _ := runCLI(t, "-verify", base); code != exitClean {
		t.Errorf("version-soft verify: exit %d, want clean", code)
	}
}

func TestVerifyTornTailAndRepair(t *testing.T) {
	base := buildJournal(t, 96, 12)
	live := livePath(t, base)
	raw, err := os.ReadFile(live)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(live, append(raw, []byte("deadbeef {\"to")...), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, _ := runCLI(t, "-verify", base)
	if code != exitRepair {
		t.Fatalf("torn tail: exit %d, want %d\n%s", code, exitRepair, out)
	}
	if !strings.Contains(out, "torn-tail") {
		t.Errorf("output missing torn-tail verdict:\n%s", out)
	}

	code, out, _ = runCLI(t, "-repair", base)
	if code != exitClean {
		t.Fatalf("repair: exit %d, want clean\n%s", code, out)
	}
	if !strings.Contains(out, "truncated") {
		t.Errorf("repair did not report the truncation:\n%s", out)
	}
	if code, _, _ := runCLI(t, "-verify", base); code != exitClean {
		t.Error("journal not clean after repair")
	}
}

func TestVerifyCasualtyAndRepairQuarantines(t *testing.T) {
	base := buildJournal(t, 96, 12)
	st, err := journal.LoadSegmented(nil, base, journal.AnyVersion)
	if err != nil {
		t.Fatal(err)
	}
	casualty := fmt.Sprintf("%s.%06d", base, st.Seg+1)
	if err := os.WriteFile(casualty, []byte("dead"), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, _ := runCLI(t, "-verify", base)
	if code != exitRepair {
		t.Fatalf("casualty: exit %d, want %d\n%s", code, exitRepair, out)
	}
	if !strings.Contains(out, "rotation-casualty") {
		t.Errorf("output missing casualty verdict:\n%s", out)
	}

	code, out, _ = runCLI(t, "-repair", base)
	if code != exitClean {
		t.Fatalf("repair: exit %d, want clean\n%s", code, out)
	}
	if !strings.Contains(out, "quarantined") {
		t.Errorf("repair did not report the quarantine:\n%s", out)
	}
	if _, err := os.Stat(casualty + ".bad"); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
}

func TestVerifyCorrupt(t *testing.T) {
	base := buildJournal(t, 0, 6)
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the first record line — unambiguous corruption.
	firstNL := bytes.IndexByte(raw, '\n')
	raw[firstNL+10] ^= 0x01
	if err := os.WriteFile(base, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, "-verify", base)
	if code != exitCorrupt {
		t.Fatalf("exit %d, want %d\n%s", code, exitCorrupt, out)
	}
	if !strings.Contains(out, "corrupt") {
		t.Errorf("output missing corrupt verdict:\n%s", out)
	}
}

func TestCompact(t *testing.T) {
	base := buildJournal(t, 96, 20)
	code, out, _ := runCLI(t, "-compact", base)
	if code != exitClean {
		t.Fatalf("compact: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "compacted 20 record(s)") {
		t.Errorf("compact output:\n%s", out)
	}
	st, err := journal.LoadSegmented(nil, base, 1)
	if err != nil || st == nil || len(st.Records) != 20 {
		t.Fatalf("post-compact load: (%+v, %v)", st, err)
	}
	if code, _, _ := runCLI(t, "-verify", base); code != exitClean {
		t.Error("journal not clean after compact")
	}
}
