// Command memjournal is the fsck of the campaign and fleet crash
// journals: it verifies, repairs and compacts any journal this repo's
// journal package writes — legacy single files and checkpointed
// segments alike — without knowing whose records they are.
//
// Usage:
//
//	memjournal -verify run.jnl
//	memjournal -repair run.jnl
//	memjournal -compact run.jnl
//	memjournal -verify -version 1 run.jnl
//
// -verify prints one verdict line per journal file and exits with a
// typed code; -repair makes the journal load cleanly using only
// operations that cannot destroy verified records (torn tails are
// truncated to their verified prefix, rotation casualties and corrupt
// files are quarantined to <path>.bad); -compact rewrites the journal
// offline into one fresh checkpointed segment. -version pins the
// record-format version (default: accept any).
//
// Exit codes: 0 the journal is clean (or empty); 1 usage or I/O
// error; 2 repairable crash debris (torn tail, rotation casualty);
// 3 corruption; 4 version skew (only with -version).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"numaperf/internal/journal"
)

const (
	exitClean   = 0
	exitUsage   = 1
	exitRepair  = 2
	exitCorrupt = 3
	exitVersion = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global parts so tests can drive the
// full lifecycle.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memjournal", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		verify  = fs.Bool("verify", false, "verify the journal and print per-file verdicts")
		repair  = fs.Bool("repair", false, "truncate torn tails and quarantine unrecoverable files to <path>.bad")
		compact = fs.Bool("compact", false, "rewrite the journal offline into one checkpointed segment")
		version = fs.Int("version", journal.AnyVersion, "record-format version to enforce (-1 accepts any)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	modes := 0
	for _, on := range []bool{*verify, *repair, *compact} {
		if on {
			modes++
		}
	}
	if modes != 1 || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: memjournal -verify|-repair|-compact [-version N] <journal>")
		return exitUsage
	}
	base := fs.Arg(0)

	switch {
	case *repair:
		rr, err := journal.Repair(nil, base)
		if err != nil {
			fmt.Fprintf(stderr, "memjournal: repair: %v\n", err)
			return exitUsage
		}
		for _, p := range rr.Truncated {
			fmt.Fprintf(stdout, "truncated %s to its verified prefix\n", p)
		}
		for _, p := range rr.Quarantined {
			fmt.Fprintf(stdout, "quarantined %s -> %s.bad\n", p, p)
		}
		if len(rr.Truncated)+len(rr.Quarantined) == 0 {
			fmt.Fprintln(stdout, "nothing to repair")
		}
	case *compact:
		cr, err := journal.Compact(nil, base, *version)
		if err != nil {
			fmt.Fprintf(stderr, "memjournal: compact: %v\n", err)
			return classify(err, *version)
		}
		fmt.Fprintf(stdout, "compacted %d record(s) into %s", cr.Records, cr.Path)
		if cr.DroppedTornTail {
			fmt.Fprint(stdout, " (dropped a torn final record)")
		}
		fmt.Fprintln(stdout)
		for _, p := range cr.Removed {
			fmt.Fprintf(stdout, "removed %s\n", p)
		}
	}

	// Every mode ends in a verification pass: -verify is one, and
	// repair/compact prove their work by fscking what they left behind.
	vr, err := journal.Verify(nil, base)
	if err != nil {
		fmt.Fprintf(stderr, "memjournal: %v\n", err)
		return exitUsage
	}
	code := exitClean
	for _, f := range vr.Files {
		line := fmt.Sprintf("%s: %s", f.Path, f.Verdict)
		switch f.Verdict {
		case journal.VerdictClean:
			n := f.Records
			if f.Checkpoint {
				n += f.CheckpointRecords
				line += fmt.Sprintf(" (%d record(s), %d checkpointed)", n, f.CheckpointRecords)
			} else {
				line += fmt.Sprintf(" (%d record(s))", n)
			}
		case journal.VerdictEmpty:
		default:
			line += ": " + f.Detail
		}
		fmt.Fprintln(stdout, line)
		if *version != journal.AnyVersion && f.Verdict == journal.VerdictClean && f.Version != *version {
			fmt.Fprintf(stdout, "%s: version %d, want %d\n", f.Path, f.Version, *version)
			code = max(code, exitVersion)
		}
		switch f.Verdict.Severity() {
		case 1:
			code = max(code, exitRepair)
		case 2:
			code = max(code, exitCorrupt)
		}
	}
	return code
}

// classify maps a typed journal error to the exit-code vocabulary.
func classify(err error, version int) int {
	var ve *journal.VersionError
	if errors.As(err, &ve) && version != journal.AnyVersion {
		return exitVersion
	}
	if errors.Is(err, journal.ErrCorrupt) {
		return exitCorrupt
	}
	return exitUsage
}
