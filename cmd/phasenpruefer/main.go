// Command phasenpruefer is the CLI counterpart of the paper's
// Phasenprüfer tool: it runs a workload with time-sliced counter
// recording, splits the run into execution phases from the memory
// footprint via segmented regression, and prints the counters
// attributed to each phase.
//
// Usage:
//
//	phasenpruefer -workload phasedapp
//	phasenpruefer -workload bspapp -k 6      # superstep extension
//
// When the requested segmentation is not statistically justified — the
// footprint is constant, a single line already fits, or the F-test
// cannot tell the segments apart — the report downgrades to one phase
// and prints a verdict line. With -strict that verdict additionally
// becomes a nonzero exit after the report is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"numaperf/internal/exec"
	"numaperf/internal/phase"
	"numaperf/internal/topology"
	"numaperf/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to analyse")
		machine  = flag.String("machine", "dl580", "machine: dl580, 2s, 8s, uma")
		threads  = flag.Int("threads", 2, "thread count")
		k        = flag.Int("k", 2, "number of phases to detect (0 = automatic via BIC)")
		slice    = flag.Uint64("slice", 0, "sampling interval in cycles (0 = auto)")
		seed     = flag.Int64("seed", 1, "noise seed")
		wlList   = flag.Bool("workloads", false, "list available workloads")
		strict   = flag.Bool("strict", false, "exit nonzero when no phase transition is statistically justified")
	)
	flag.Parse()

	if *wlList {
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return
	}
	if *workload == "" {
		flag.Usage()
		os.Exit(2)
	}
	mach, ok := topology.ByName(*machine)
	if !ok {
		fatalf("unknown machine %q (have %v)", *machine, topology.MachineNames())
	}
	wl, ok := workloads.ByName(*workload)
	if !ok {
		fatalf("unknown workload %q (have %v)", *workload, workloads.Names())
	}
	e, err := exec.NewEngine(exec.Config{Machine: mach, Threads: *threads, Seed: *seed})
	if err != nil {
		fatalf("%v", err)
	}
	rep, err := phase.Analyze(e, wl.Body(), *k, *slice)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s on %s (%d threads)\n\n", wl.Name(), mach.Name, *threads)
	fmt.Print(rep.Render())
	if *strict && rep.Verdict != nil {
		fmt.Fprintf(os.Stderr, "phasenpruefer: -strict: %v\n", rep.Verdict)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "phasenpruefer: "+format+"\n", args...)
	os.Exit(1)
}
