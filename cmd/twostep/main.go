// Command twostep runs the paper's two-step performance assessment
// strategy end to end: measure a workload family at small sizes,
// select indicators, fit code→indicator extrapolation models and the
// indicator→cost model, then predict the cost of a larger target size
// and compare against the measured truth and the monolithic baselines.
// With -transfer the cost model is re-calibrated on a second machine.
//
// Usage:
//
//	twostep -family triad -train 65536,98304,131072,196608 -target 1048576
//	twostep -family chase -train 4096,8192,16384 -target 65536 -transfer 2s
//	twostep -family sort -train 65536,131072,262144 -target 1048576 -parallel 4
//
// -parallel N measures up to N training sizes of a collection phase
// concurrently, each on its own engine; the fitted models and the
// report are identical to -parallel 1.
//
// With -strict the command exits nonzero after printing the report
// whenever the strategy was built from degraded data — training rows
// dropped for non-finite cycles, collinear indicator columns removed or
// ridge-regularised — or the prediction itself is non-finite. The
// caveats are always printed either way; -strict only changes the exit
// status so scripts can gate on prediction trustworthiness.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"numaperf/internal/campaign"
	"numaperf/internal/core"
	"numaperf/internal/exec"
	"numaperf/internal/models"
	"numaperf/internal/topology"
	"numaperf/internal/workloads"
)

// families maps a family name to a parameterised workload constructor.
var families = map[string]func(param float64) workloads.Workload{
	"triad": func(p float64) workloads.Workload { return workloads.Triad{Elements: int(p)} },
	"chase": func(p float64) workloads.Workload {
		return workloads.PointerChase{Lines: uint64(p), Hops: int(4 * p)}
	},
	"sort": func(p float64) workloads.Workload { return workloads.ParallelSort{Elements: int(p)} },
}

func main() {
	var (
		family   = flag.String("family", "triad", "workload family: triad, chase, sort")
		trainCSV = flag.String("train", "65536,98304,131072,196608,262144", "training sizes")
		target   = flag.Float64("target", 1048576, "size to predict")
		reps     = flag.Int("reps", 2, "runs per training size")
		machine  = flag.String("machine", "dl580", "machine: dl580, 2s, 8s, uma")
		transfer = flag.String("transfer", "", "re-calibrate the cost model on this machine")
		maxInd   = flag.Int("indicators", 4, "maximum indicator count")
		threads  = flag.Int("threads", 1, "thread count")
		seed     = flag.Int64("seed", 1, "noise seed")
		runTO    = flag.Duration("run-timeout", campaign.DefaultRunTimeout, "wall-clock budget per collection phase (0 = none)")
		maxRetry = flag.Int("max-retries", campaign.DefaultMaxRetries, "retries per collection phase on transient failure (0 = none)")
		parallel = flag.Int("parallel", 1, "training sizes measured concurrently; results are identical at any setting")
		strict   = flag.Bool("strict", false, "exit nonzero when the strategy carries hard data-quality caveats")
	)
	flag.Parse()

	// Each collection phase (training, calibration, truth) runs under
	// the same supervision a campaign cell gets: wall-clock timeout,
	// panic recovery, and deterministic capped-backoff retries.
	// With -parallel N, up to N training sizes of a phase are measured
	// concurrently; every size runs on its own engine and the points are
	// reassembled in size order, so the fitted models and the report are
	// identical at any setting.
	sup := campaign.NewSupervisor(*runTO, *maxRetry, *seed)
	collect := func(phase string, sizes []float64, c func(p float64) (*exec.Engine, func(*exec.Thread), error)) []core.TrainingPoint {
		pts, attempts, err := campaign.Do(sup, func() ([]core.TrainingPoint, error) {
			return core.CollectTrainingParallel(sizes, *reps, *parallel, c)
		})
		if err != nil {
			fatalf("%s: %v", phase, err)
		}
		if attempts > 1 {
			fmt.Fprintf(os.Stderr, "twostep: %s succeeded after %d attempts\n", phase, attempts)
		}
		return pts
	}

	mk, ok := families[*family]
	if !ok {
		fatalf("unknown family %q", *family)
	}
	mach, ok := topology.ByName(*machine)
	if !ok {
		fatalf("unknown machine %q (have %v)", *machine, topology.MachineNames())
	}
	var trainSizes []float64
	for _, s := range strings.Split(*trainCSV, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatalf("bad training size %q: %v", s, err)
		}
		trainSizes = append(trainSizes, v)
	}

	collector := func(m *topology.Machine) func(p float64) (*exec.Engine, func(*exec.Thread), error) {
		return func(p float64) (*exec.Engine, func(*exec.Thread), error) {
			e, err := exec.NewEngine(exec.Config{Machine: m, Threads: *threads, Seed: *seed})
			if err != nil {
				return nil, nil, err
			}
			return e, mk(p).Body(), nil
		}
	}

	fmt.Printf("training %s on %s at sizes %v (%d reps)\n", *family, mach.Name, trainSizes, *reps)
	train := collect("training", trainSizes, collector(mach))
	st, err := core.Build(train, "size", *maxInd)
	if err != nil {
		fatalf("building strategy: %v", err)
	}
	fmt.Printf("\n%s\n", st.String())

	evalMach := mach
	if *transfer != "" {
		tm, ok := topology.ByName(*transfer)
		if !ok {
			fatalf("unknown transfer machine %q", *transfer)
		}
		fmt.Printf("re-calibrating the cost model on %s\n", tm.Name)
		calib := collect("calibration", trainSizes, collector(tm))
		st, err = st.Transfer(calib)
		if err != nil {
			fatalf("transfer: %v", err)
		}
		evalMach = tm
	}

	truth := collect("measuring target", []float64{*target}, collector(evalMach))
	var actual float64
	for _, p := range truth {
		actual += p.Cycles
	}
	actual /= float64(len(truth))

	pred := st.PredictCycles(*target)
	fmt.Printf("\npredicting size %.0f on %s:\n", *target, evalMach.Name)
	fmt.Printf("%-14s %14.4g cycles  error %6.1f%%\n", "two-step", pred, 100*relErr(pred, actual))
	fmt.Printf("%-14s %14.4g cycles  (measured, %d runs)\n", "actual", actual, len(truth))

	char := models.Characterize(resultOf(truth))
	fmt.Println("\nmonolithic baselines (no counter access):")
	for _, b := range models.All() {
		p := b.PredictCycles(char, evalMach)
		fmt.Printf("%-14s %14.4g cycles  error %6.1f%%\n", b.Name(), p, 100*relErr(p, actual))
	}

	if *strict {
		switch {
		case st.HardDegraded():
			fmt.Fprintln(os.Stderr, "twostep: -strict: strategy carries hard data-quality caveats (see report above)")
			os.Exit(1)
		case math.IsNaN(pred) || math.IsInf(pred, 0):
			fmt.Fprintf(os.Stderr, "twostep: -strict: prediction is non-finite (%g)\n", pred)
			os.Exit(1)
		}
	}
}

// resultOf reconstructs a minimal result view for Characterize from a
// training point (counters plus machine-independent fields).
func resultOf(pts []core.TrainingPoint) *exec.Result {
	p := pts[0]
	return &exec.Result{Raw: p.Counts, Cycles: uint64(p.Cycles), Threads: 1,
		PerCore: nil, Uncore: nil}
}

func relErr(pred, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return math.Abs(pred-actual) / actual
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "twostep: "+format+"\n", args...)
	os.Exit(1)
}
