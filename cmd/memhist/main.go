// Command memhist is the CLI counterpart of the paper's Memhist tool:
// it measures the latency-cost distribution of memory loads with the
// (simulated) PEBS load-latency facility, either locally or through a
// remote headless probe (see cmd/memhist-probe), and renders the
// histogram with peak annotations.
//
// Usage:
//
//	memhist -workload mlc-local
//	memhist -workload mlc-remote -mode costs
//	memhist -workload sift -threads 8 -machine dl580
//	memhist -workload mlc-remote -remote host:9844
//	memhist -workload sift -remote host:9844 -retries 3 -fallback-local
//	memhist -workload sift -remote host:9844 -retries 3 -breaker-threshold 3
//	memhist -workload mlc-local -adaptive -strict -min-coverage 0.5
//
// The histogram carries a sampling-fidelity report (coverage, dropped
// records, throttled cycles); -strict turns fidelity into an exit code:
// the report is always printed, but coverage below -min-coverage or a
// clamped-negative-mass share above -max-clamped-share exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"numaperf/internal/exec"
	"numaperf/internal/memhist"
	"numaperf/internal/topology"
	"numaperf/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to profile")
		machine  = flag.String("machine", "dl580", "machine: dl580, 2s, 8s, uma")
		threads  = flag.Int("threads", 1, "thread count")
		modeArg  = flag.String("mode", "occurrences", "occurrences or costs")
		exact    = flag.Bool("exact", false, "full-information sampling instead of threshold cycling")
		remote   = flag.String("remote", "", "fetch from a probe at host:port instead of measuring locally")
		retries  = flag.Int("retries", 0, "extra attempts after transient probe failures")
		fallback = flag.Bool("fallback-local", false, "measure locally if the probe stays unreachable")
		probeTO  = flag.Duration("probe-timeout", 5*time.Minute, "per-attempt probe deadline")
		brkAfter = flag.Int("breaker-threshold", 0, "consecutive probe failures before the circuit breaker opens (0 = no breaker)")
		brkCool  = flag.Duration("breaker-cooldown", 0, "circuit breaker cooldown before a half-open trial (0 = default)")
		brkMax   = flag.Duration("breaker-max-cooldown", 0, "circuit breaker cooldown cap under repeated failed trials (0 = default)")
		boundCSV = flag.String("bounds", "", "comma-separated latency thresholds in cycles")
		slice    = flag.Uint64("slice", 0, "threshold-cycling slice in cycles (0 = 100 Hz)")
		reps     = flag.Int("reps", 1, "cycled runs to average")
		width    = flag.Int("width", 60, "histogram bar width")
		seed     = flag.Int64("seed", 1, "noise seed")
		wlList   = flag.Bool("workloads", false, "list available workloads")
		adaptive = flag.Bool("adaptive", false, "repair starved thresholds with adaptive dwell cycling")
		strict   = flag.Bool("strict", false, "exit nonzero when the fidelity gates below fail")
		minCov   = flag.Float64("min-coverage", memhist.DefaultCoverageFloor,
			"-strict gate: minimum sampling coverage")
		maxClamp = flag.Float64("max-clamped-share", 1,
			"-strict gate: maximum share of histogram mass clamped as negative artefacts")
	)
	flag.Parse()

	if *wlList {
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return
	}
	if *workload == "" {
		flag.Usage()
		os.Exit(2)
	}
	mode := memhist.Occurrences
	switch *modeArg {
	case "occurrences":
	case "costs":
		mode = memhist.Costs
	default:
		fatalf("unknown mode %q", *modeArg)
	}
	bounds, err := parseBounds(*boundCSV)
	if err != nil {
		fatal(err)
	}
	if bounds != nil {
		// Validate up front for a typed CLI error; Collect/Exact and the
		// probe re-validate with the same rules.
		if err := memhist.ValidateBounds(bounds); err != nil {
			fatal(err)
		}
	}

	mach, ok := topology.ByName(*machine)
	if !ok {
		fatalf("unknown machine %q (have %v)", *machine, topology.MachineNames())
	}

	var h *memhist.Histogram
	if *remote != "" {
		var breaker *memhist.Breaker
		if *brkAfter > 0 {
			breaker = &memhist.Breaker{
				Target:      *remote,
				Threshold:   *brkAfter,
				Cooldown:    *brkCool,
				MaxCooldown: *brkMax,
			}
		}
		h, err = memhist.FetchRemoteWith(*remote, memhist.ProbeRequest{
			Workload:    *workload,
			Machine:     *machine,
			Threads:     *threads,
			Bounds:      bounds,
			SliceCycles: *slice,
			Reps:        *reps,
			Exact:       *exact,
			Adaptive:    *adaptive,
			Seed:        *seed,
		}, memhist.FetchOptions{
			Timeout:       *probeTO,
			Retries:       *retries,
			FallbackLocal: *fallback,
			Breaker:       breaker,
		})
		if err != nil {
			fatal(err)
		}
		switch h.Origin {
		case memhist.OriginLocalFallback:
			fmt.Printf("source: local fallback (probe %s unreachable)\n\n", *remote)
		default:
			fmt.Printf("source: remote probe %s\n\n", *remote)
		}
	} else {
		wl, ok := workloads.ByName(*workload)
		if !ok {
			fatalf("unknown workload %q (have %v)", *workload, workloads.Names())
		}
		e, err := exec.NewEngine(exec.Config{Machine: mach, Threads: *threads, Seed: *seed, Chunk: 256})
		if err != nil {
			fatal(err)
		}
		if *exact {
			h, err = memhist.Exact(e, wl.Body(), bounds, 1)
		} else {
			h, err = memhist.Collect(e, wl.Body(), memhist.Options{
				Bounds:      bounds,
				SliceCycles: *slice,
				Reps:        *reps,
				Adaptive:    *adaptive,
			})
		}
		if err != nil {
			fatal(err)
		}
		h.Source = wl.Name()
	}

	fmt.Print(h.Render(mode, *width))
	fmt.Println("\npeaks:")
	for _, p := range h.Annotate(mach) {
		hi := fmt.Sprint(p.Hi)
		if p.Hi == 0 {
			hi = "∞"
		}
		fmt.Printf("  [%d, %s) cycles: %-14s (%.4g events)\n", p.Lo, hi, p.Label, p.Count)
	}
	if n := h.NegativeArtifacts(); n > 0 {
		fmt.Printf("\n%d interval(s) with negative estimates — threshold-cycling artefact, see paper §IV-B\n", n)
	}
	if h.Quality != nil {
		fmt.Printf("\nsampling fidelity: %s\n", h.Quality)
	}

	// -strict: the report above is always printed; fidelity only decides
	// the exit code, matching the other CLIs' strict mode.
	if *strict {
		failed := false
		if cov := h.Coverage(); cov < *minCov {
			fmt.Fprintf(os.Stderr, "memhist: -strict: sampling coverage %.3f below floor %.3f\n", cov, *minCov)
			failed = true
		}
		if _, share := h.ClampedMass(); share > *maxClamp {
			fmt.Fprintf(os.Stderr, "memhist: -strict: clamped negative mass share %.3f exceeds %.3f\n", share, *maxClamp)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
	}
}

func parseBounds(csv string) ([]uint64, error) {
	if csv == "" {
		return nil, nil
	}
	var out []uint64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	// Errors from internal/memhist already carry the package prefix.
	fmt.Fprintf(os.Stderr, "memhist: %s\n", strings.TrimPrefix(err.Error(), "memhist: "))
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "memhist: "+format+"\n", args...)
	os.Exit(1)
}
