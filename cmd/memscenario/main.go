// Command memscenario runs a declarative chaos scenario: one YAML (or
// JSON) file naming a measurement stage, a timeline of fault
// injections across the five fault packages, and the assertions the
// outcome must satisfy. The same scenario under the same seed always
// produces a byte-identical machine-readable run report, so a report
// checked in once pins the behaviour forever.
//
// Usage:
//
//	memscenario -scenario scenarios/run-transient-exit.yaml
//	memscenario -scenario s.yaml -seed 7 -report run.jnl
//	memscenario -scenario s.yaml -strict
//	memscenario -list-actions
//
// -strict turns failed assertions into a nonzero exit; without it the
// verdict is printed but the run exits zero, which suits exploratory
// fault dialling. -report writes the CRC-framed JSON-lines report.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"

	"numaperf/internal/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global parts so tests can drive the
// full lifecycle.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memscenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenarioPath = fs.String("scenario", "", "scenario file to run (YAML subset or JSON)")
		seed         = fs.Int64("seed", 0, "override the scenario's seed (0 = use the file's)")
		report       = fs.String("report", "", "write the machine-readable run report to this file")
		strict       = fs.Bool("strict", false, "exit nonzero when any assertion fails")
		listActions  = fs.Bool("list-actions", false, "list every DSL action and exit")
		verbose      = fs.Bool("v", false, "log stage progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "memscenario: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		return 2
	}
	if *listActions {
		printActions(stdout)
		return 0
	}
	if *scenarioPath == "" {
		fmt.Fprintln(stderr, "memscenario: -scenario is required (or -list-actions)")
		fs.Usage()
		return 2
	}
	_ = ctx

	sc, err := scenario.Load(*scenarioPath)
	if err != nil {
		fmt.Fprintf(stderr, "memscenario: %v\n", err)
		return 1
	}
	opts := scenario.RunOptions{Seed: *seed}
	if *verbose {
		opts.Logf = func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		}
	}
	res, err := scenario.Run(sc, opts)
	if err != nil {
		fmt.Fprintf(stderr, "memscenario: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, res.Summary())
	if *report != "" {
		if err := res.WriteReport(*report); err != nil {
			fmt.Fprintf(stderr, "memscenario: write report: %v\n", err)
			return 1
		}
	}
	if *strict && !res.OK() {
		return 1
	}
	return 0
}

func printActions(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "ACTION\tMODES\tPARAMS\tSUMMARY")
	for _, a := range scenario.Actions() {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", a.Name, strings.Join(a.Modes, ","), a.Params, a.Summary)
	}
	tw.Flush()
}
