package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numaperf/internal/scenario"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func libScenario(name string) string {
	return filepath.Join("..", "..", "scenarios", name+".yaml")
}

func TestListActions(t *testing.T) {
	code, out, _ := runCLI(t, "-list-actions")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"ACTION", "net.truncate_response", "run.exit", "data.poison_samples", "perf.throttle_storm", "fleet.kill_coordinator", "assert.matches_reference"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list-actions output missing %q", want)
		}
	}
}

func TestStrictPass(t *testing.T) {
	code, out, stderr := runCLI(t, "-scenario", libScenario("run-transient-exit"), "-strict")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "verdict: PASS") {
		t.Errorf("summary missing verdict:\n%s", out)
	}
}

func TestStrictFailure(t *testing.T) {
	// A scenario whose assertion cannot hold: a fault-free campaign
	// asserted to have retried at least once.
	path := filepath.Join(t.TempDir(), "failing.yaml")
	body := `name: failing
mode: campaign
seed: 3
campaign:
  workload: scenario-tiny
  machine: 2s
  threads: [1]
  events: [CPU_CLK_UNHALTED.THREAD]
  reps: 1
events:
  - at: 1s
    action: assert.retried
    min: 1
`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, "-scenario", path, "-strict")
	if code != 1 {
		t.Errorf("strict failing scenario: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "verdict: FAIL") {
		t.Errorf("summary missing FAIL verdict:\n%s", out)
	}
	// Without -strict a failed assertion still exits 0: the run itself
	// succeeded and the report carries the verdict.
	code, _, _ = runCLI(t, "-scenario", path)
	if code != 0 {
		t.Errorf("non-strict failing scenario: exit %d, want 0", code)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no -scenario
		{"-bogus-flag"},             // unknown flag
		{"-scenario", "x", "extra"}, // positional argument
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestBadScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(path, []byte("name: x\nmode: warp\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-scenario", path)
	if code != 1 {
		t.Errorf("invalid scenario: exit %d, want 1", code)
	}
	if stderr == "" {
		t.Error("invalid scenario produced no diagnostic")
	}
	if code, _, _ := runCLI(t, "-scenario", filepath.Join(t.TempDir(), "missing.yaml")); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

func TestReportFlag(t *testing.T) {
	report := filepath.Join(t.TempDir(), "out.report")
	code, _, stderr := runCLI(t, "-scenario", libScenario("data-poisoned-compare"), "-report", report, "-strict")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	state, err := scenario.ParseReport(raw)
	if err != nil {
		t.Fatalf("written report does not parse: %v", err)
	}
	if state == nil || state.Truncated || len(state.Records) == 0 {
		t.Fatalf("written report parsed empty or truncated: %+v", state)
	}

	// A -seed override must land in the header and change the bytes.
	report2 := filepath.Join(t.TempDir(), "out2.report")
	if code, _, _ := runCLI(t, "-scenario", libScenario("data-poisoned-compare"), "-report", report2, "-seed", "99"); code != 0 {
		t.Fatalf("seed-override run: exit %d", code)
	}
	raw2, err := os.ReadFile(report2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw, raw2) {
		t.Error("-seed override did not change the report")
	}
}
