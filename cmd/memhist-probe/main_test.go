package main

import (
	"context"
	"net"
	"os"
	"os/signal"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"numaperf/internal/exec"
	"numaperf/internal/memhist"
	"numaperf/internal/probenet"
	"numaperf/internal/workloads"
)

// lockedBuf lets the test read run's output while run is still writing.
type lockedBuf struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// blockingWorkload parks the probe's measurement until released so the
// test can deliver SIGTERM while a request is provably in flight.
type blockingWorkload struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (w *blockingWorkload) Name() string { return "test-probe-block" }
func (w *blockingWorkload) Body() func(*exec.Thread) {
	return func(*exec.Thread) {
		w.once.Do(func() { close(w.started) })
		<-w.release
	}
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// TestRunSurvivesSIGTERMDuringMeasurement delivers a real SIGTERM while
// a measurement is in flight: the request must complete, new
// connections must be told "shutting-down", and run must return 0.
func TestRunSurvivesSIGTERMDuringMeasurement(t *testing.T) {
	w := &blockingWorkload{started: make(chan struct{}), release: make(chan struct{})}
	workloads.Register(w.Name(), func() workloads.Workload { return w })

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	var out, errOut lockedBuf
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{"-listen", "127.0.0.1:0", "-drain-timeout", "20s"}, &out, &errOut)
	}()

	// Wait for the probe to announce its address.
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(5 * time.Millisecond) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("probe never announced its address; output: %q", out.String())
	}

	type result struct {
		h   *memhist.Histogram
		err error
	}
	fetched := make(chan result, 1)
	go func() {
		h, err := memhist.FetchRemoteWith(addr, memhist.ProbeRequest{
			Workload: w.Name(), Machine: "2s", Exact: true, Bounds: []uint64{4, 64},
		}, memhist.FetchOptions{Timeout: 30 * time.Second})
		fetched <- result{h, err}
	}()
	<-w.started

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// During the drain, a new connection must receive "shutting-down".
	sawFarewell := false
	for deadline := time.Now().Add(5 * time.Second); !sawFarewell && time.Now().Before(deadline); {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			break // listener closed: drain already finished
		}
		_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
		ft, payload, err := probenet.ReadFrame(conn)
		if err == nil && ft == probenet.FrameError {
			var em probenet.ErrorMsg
			if probenet.Decode(ft, payload, &em) == nil && em.Code == probenet.CodeShuttingDown {
				sawFarewell = true
			}
		}
		conn.Close()
		if !sawFarewell {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !sawFarewell {
		t.Error("no shutting-down farewell during drain")
	}

	close(w.release)
	res := <-fetched
	if res.err != nil {
		t.Fatalf("in-flight measurement lost to SIGTERM: %v", res.err)
	}
	if res.h == nil || res.h.Origin != memhist.OriginProbe {
		t.Errorf("histogram = %+v", res.h)
	}

	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0; stderr: %q", code, errOut.String())
		}
	case <-time.After(25 * time.Second):
		t.Fatal("probe did not exit after drain")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Errorf("output missing drain confirmation: %q", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errOut lockedBuf
	if code := run(context.Background(), []string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-listen", "256.0.0.1:99999"}, &out, &errOut); code != 1 {
		t.Errorf("bad listen address: exit %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-fleet-coordinator", "coord:1", "-reconnect-base", "-1s"}, &out, &errOut); code != 2 {
		t.Errorf("negative reconnect backoff: exit %d, want 2", code)
	}
}
