// Command memhist-probe is the headless measurement probe of the
// paper's Fig. 6 architecture: server platforms without a rich
// graphical interface run this probe next to the testee; the memhist
// front end connects over TCP, submits measurement requests over the
// framed probenet protocol, and receives histograms.
//
// The probe serves connections concurrently up to -max-conns (excess
// peers get an "overloaded" error) and drains gracefully on SIGINT or
// SIGTERM: in-flight measurements finish and deliver their responses,
// idle and new peers receive "shutting-down", and the process exits 0.
//
// With -fleet-coordinator the probe inverts roles: instead of listening
// for a front end, it dials the given fleet coordinator, registers
// under -probe-id, heartbeats every -heartbeat-interval, and serves the
// campaign cells the coordinator scatters to it, reconnecting with
// deterministic backoff when the link drops. The same loop carries the
// probe across coordinator restarts: when a journal-backed coordinator
// crashes and resumes (memhist-fleet -journal/-resume), the probe keeps
// redialling with -reconnect-base/-reconnect-max backoff and registers
// under a fresh instance number once the address answers again. A
// quarantine verdict from the coordinator is terminal — including one
// restored from the coordinator's journal after a restart.
//
// Usage:
//
//	memhist-probe -listen :9844 -max-conns 8 -drain-timeout 30s
//	memhist-probe -fleet-coordinator coord:9845 -probe-id node17
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"numaperf/internal/fleet"
	"numaperf/internal/memhist"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global parts so tests can drive the
// full lifecycle, cancelling ctx in place of a signal.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memhist-probe", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen        = fs.String("listen", "127.0.0.1:9844", "TCP address to listen on")
		maxConns      = fs.Int("max-conns", 16, "concurrent connections before rejecting with 'overloaded'")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight measurements on shutdown")
		maxInflight   = fs.Int("max-inflight", 0, "concurrent measurements before queueing/shedding requests (0 = unlimited)")
		queueBudget   = fs.Int("queue-budget", 0, "requests allowed to wait for a measurement slot (with -max-inflight)")
		brownoutAfter = fs.Int("brownout-after", 0, "sheds in one pressure episode before serving reduced-fidelity histograms (0 = never)")

		coordinator = fs.String("fleet-coordinator", "", "fleet coordinator address; when set, dial and serve campaign cells instead of listening")
		probeID     = fs.String("probe-id", "", "probe identity for fleet registration (default: host name)")
		heartbeat   = fs.Duration("heartbeat-interval", fleet.DefaultHeartbeatInterval, "fleet heartbeat period")
		reconnBase  = fs.Duration("reconnect-base", 0, "fleet reconnect backoff base (0 = probenet default)")
		reconnMax   = fs.Duration("reconnect-max", 0, "fleet reconnect backoff cap (0 = probenet default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *reconnBase < 0 || *reconnMax < 0 {
		fmt.Fprintln(stderr, "memhist-probe: reconnect backoff durations must not be negative")
		return 2
	}
	if *maxInflight < 0 || *queueBudget < 0 || *brownoutAfter < 0 {
		fmt.Fprintln(stderr, "memhist-probe: admission limits must not be negative")
		return 2
	}
	if *maxInflight == 0 && (*queueBudget > 0 || *brownoutAfter > 0) {
		fmt.Fprintln(stderr, "memhist-probe: -queue-budget and -brownout-after need -max-inflight > 0")
		return 2
	}

	if *coordinator != "" {
		return runFleetAgent(ctx, *coordinator, *probeID, *heartbeat, *reconnBase, *reconnMax, stdout, stderr)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "memhist-probe: %v\n", err)
		return 1
	}
	srv := &memhist.ProbeServer{
		MaxConns:      *maxConns,
		MaxInflight:   *maxInflight,
		QueueBudget:   *queueBudget,
		BrownoutAfter: *brownoutAfter,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	}
	fmt.Fprintf(stdout, "memhist-probe: listening on %s (max-conns %d)\n", l.Addr(), *maxConns)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintf(stderr, "memhist-probe: %v\n", err)
			return 1
		}
		return 0
	case <-ctx.Done():
		fmt.Fprintf(stdout, "memhist-probe: draining (grace %s)...\n", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := srv.Shutdown(dctx)
		<-serveErr // Serve returns nil once the listener closes.
		stats := srv.Stats()
		fmt.Fprintf(stdout, "memhist-probe: served %d, errors %d, rejected %d, encode failures %d\n",
			stats.Served, stats.ErrorsSent, stats.RejectedOverload+stats.RejectedDraining, stats.EncodeFailures)
		// Fidelity summary, only when sampling actually lost something:
		// the drain output of a lossless probe is unchanged.
		if stats.SamplesDropped > 0 || stats.ThrottledCycles > 0 || stats.LowCoverageServed > 0 {
			fmt.Fprintf(stdout, "memhist-probe: fidelity: %d samples dropped, %d cycles throttled, %d low-coverage responses\n",
				stats.SamplesDropped, stats.ThrottledCycles, stats.LowCoverageServed)
		}
		// Overload summary, only when admission control actually acted:
		// the drain output of an unpressured probe is unchanged.
		if stats.ShedOverload > 0 || stats.QueuedRequests > 0 || stats.BrownoutEntered > 0 {
			fmt.Fprintf(stdout, "memhist-probe: overload: %d requests shed, %d queued, %d brownout(s) entered, %d brownout responses\n",
				stats.ShedOverload, stats.QueuedRequests, stats.BrownoutEntered, stats.BrownoutServed)
		}
		if err != nil {
			fmt.Fprintf(stderr, "memhist-probe: drain timeout exceeded, connections force-closed: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "memhist-probe: drained cleanly")
		return 0
	}
}

// runFleetAgent runs the probe in fleet mode: register with the
// coordinator, heartbeat, serve cells, reconnect on link loss (and
// across coordinator restarts) under fresh instance numbers.
func runFleetAgent(ctx context.Context, coordinator, probeID string, heartbeat, reconnBase, reconnMax time.Duration, stdout, stderr io.Writer) int {
	if probeID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			fmt.Fprintln(stderr, "memhist-probe: -probe-id required (host name unavailable)")
			return 2
		}
		probeID = host
	}
	agent := &fleet.ProbeAgent{
		ID:                probeID,
		Coordinator:       coordinator,
		HeartbeatInterval: heartbeat,
		BackoffBase:       reconnBase,
		BackoffMax:        reconnMax,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	}
	fmt.Fprintf(stdout, "memhist-probe: fleet mode, probe %q -> coordinator %s (heartbeat %s)\n",
		probeID, coordinator, heartbeat)
	err := agent.Run(ctx)
	stats := agent.Stats()
	fmt.Fprintf(stdout, "memhist-probe: fleet agent stopped: %d connects, %d cells served, %d failed, %d heartbeats\n",
		stats.Connects, stats.Served, stats.Failed, stats.Heartbeats)
	if err != nil && !errors.Is(err, context.Canceled) && ctx.Err() == nil {
		fmt.Fprintf(stderr, "memhist-probe: %v\n", err)
		return 1
	}
	return 0
}
