// Command memhist-probe is the headless measurement probe of the
// paper's Fig. 6 architecture: server platforms without a rich
// graphical interface run this probe next to the testee; the memhist
// front end connects over TCP, submits a measurement request, and
// receives the histogram.
//
// Usage:
//
//	memhist-probe -listen :9844
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"numaperf/internal/memhist"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9844", "TCP address to listen on")
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memhist-probe: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("memhist-probe: listening on %s\n", l.Addr())
	if err := memhist.ServeProbe(l); err != nil {
		fmt.Fprintf(os.Stderr, "memhist-probe: %v\n", err)
		os.Exit(1)
	}
}
