// Benchmarks regenerating every table and figure of the paper's
// evaluation section (one benchmark per artefact), plus ablations.
// Each iteration executes the full experiment on the two-socket
// machine with downsized (Quick) workloads; headline metrics are
// attached to the benchmark output via ReportMetric so the paper-shape
// numbers appear alongside the timings. The full-size variants run via
// cmd/numabench.
package numaperf_test

import (
	"testing"

	"numaperf/internal/experiments"
	"numaperf/internal/topology"
)

// benchExperiment runs one experiment per iteration and reports the
// named metrics.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	cfg := experiments.Config{Machine: topology.TwoSocket(), Quick: true, Seed: 1}
	b.ReportAllocs()
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	for _, m := range metrics {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// BenchmarkTable1Machine regenerates Table I (machine specification).
func BenchmarkTable1Machine(b *testing.B) {
	benchExperiment(b, "table1", "cores", "sockets")
}

// BenchmarkFig7SegmentedRegression regenerates the Fig. 7 method demo.
func BenchmarkFig7SegmentedRegression(b *testing.B) {
	benchExperiment(b, "fig7", "pivot_sample")
}

// BenchmarkFig8CacheMissCompare regenerates the Fig. 8 EvSel
// comparison of Listings 1 and 2.
func BenchmarkFig8CacheMissCompare(b *testing.B) {
	benchExperiment(b, "fig8", "l1_miss_rel", "pf_requests_rel", "fb_full_b")
}

// BenchmarkFig9ParallelSortSweep regenerates the Fig. 9 correlation
// study.
func BenchmarkFig9ParallelSortSweep(b *testing.B) {
	benchExperiment(b, "fig9", "lock_R", "spec_R")
}

// BenchmarkFig10aSIFTHistogram regenerates the Fig. 10a Memhist
// histogram of the NUMA-optimised SIFT.
func BenchmarkFig10aSIFTHistogram(b *testing.B) {
	benchExperiment(b, "fig10a", "cache_mass", "remote_mass")
}

// BenchmarkFig10bRemoteHistogram regenerates the Fig. 10b cost
// histogram of the induced remote accesses.
func BenchmarkFig10bRemoteHistogram(b *testing.B) {
	benchExperiment(b, "fig10b", "remote_cost", "local_cost")
}

// BenchmarkFig11PhaseSplit regenerates the Fig. 11 Phasenprüfer split.
func BenchmarkFig11PhaseSplit(b *testing.B) {
	benchExperiment(b, "fig11", "pivot_error_frac")
}

// BenchmarkTwoStepStrategy regenerates the two-step-vs-baselines study
// of Section III.
func BenchmarkTwoStepStrategy(b *testing.B) {
	benchExperiment(b, "twostep", "twostep_error", "best_baseline_error")
}

// BenchmarkAblationBatchingVsCycling regenerates ablation A1
// (register batching vs perf-style multiplexing).
func BenchmarkAblationBatchingVsCycling(b *testing.B) {
	benchExperiment(b, "ablation-batching", "batched_error", "multiplexed_error")
}

// BenchmarkAblationThresholdCycling regenerates ablation A2 (Memhist
// threshold-cycling error and negative bins).
func BenchmarkAblationThresholdCycling(b *testing.B) {
	benchExperiment(b, "ablation-cycling", "fine_error", "coarse_error")
}

// BenchmarkAblationKPhase regenerates ablation A3 (k-phase detection).
func BenchmarkAblationKPhase(b *testing.B) {
	benchExperiment(b, "ablation-kphase", "sse_improvement")
}

// BenchmarkAblationGammaFit regenerates ablation A4 (gamma vs normal
// counter populations).
func BenchmarkAblationGammaFit(b *testing.B) {
	benchExperiment(b, "ablation-gamma", "ks_gamma", "ks_normal")
}

// BenchmarkTransferStrategy regenerates the cross-machine transfer
// study (Fig. 4b portability).
func BenchmarkTransferStrategy(b *testing.B) {
	cfg := experiments.Config{Quick: true, Seed: 1} // 2s → DL580
	b.ReportAllocs()
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run("transfer", cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.ReportMetric(last.Metrics["transferred_error"], "transferred_error")
	b.ReportMetric(last.Metrics["untransferred_error"], "untransferred_error")
}

// BenchmarkTopologySensitivity regenerates the remote-cost-vs-topology
// study.
func BenchmarkTopologySensitivity(b *testing.B) {
	benchExperiment(b, "topology", "2s_ratio", "8s_ratio")
}
